// Package colfile implements a compact columnar file format ("parquet-lite")
// in the spirit of Apache Parquet, which the paper uses both as a lossless
// baseline and as the materialization backend for DeepSqueeze's failure
// streams. Each column is stored as an independently-encoded chunk:
// integer-valued data goes through the colenc encoding selector
// (dictionary / RLE / delta / frame-of-reference / Huffman), string data
// through a dictionary or raw layout, and every chunk gets an optional
// DEFLATE pass kept only when it pays.
package colfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"deepsqueeze/internal/codec"
	"deepsqueeze/internal/colenc"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
)

// ErrCorrupt is returned when a file fails validation.
var ErrCorrupt = errors.New("colfile: corrupt file")

var magic = [4]byte{'D', 'S', 'C', 'F'}

const version = 1

// Column chunk layouts. Part of the on-disk format; do not renumber.
const (
	chunkCatDict byte = iota // string dictionary + integer codes
	chunkCatRaw              // length-prefixed strings
	chunkNumRaw              // 8-byte little-endian float64s
	chunkNumDict             // float64 value dictionary + integer ranks
	chunkNumXor              // Gorilla-style XOR-compressed float64s
)

// wrapCodecErr keeps this package's error contract across the codec
// delegation: colenc errors pass through untouched, anything else is
// classified under ErrCorrupt.
func wrapCodecErr(err error) error {
	if err == nil || errors.Is(err, colenc.ErrCorrupt) || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// Deflate wraps payload with a 1-byte tag: 0 = stored, 1 = DEFLATE. The
// compressed form is kept only when strictly smaller.
func Deflate(payload []byte) []byte {
	return codec.CompressBytes(payload, codec.ByteOnly)
}

// deflateLevel is Deflate at an explicit compression level. Any writer
// failure — including an invalid level — falls back to the stored form, so
// the result is always a valid chunk and the encoder never panics.
func deflateLevel(payload []byte, level int) []byte {
	return codec.DeflateLevel(payload, level)
}

// maxInflatedBytes caps the output of a single DEFLATE chunk; the codec
// layer owns the bound, this package re-exposes it for its own bomb tests.
const maxInflatedBytes = codec.MaxInflatedBytes

// Inflate inverts Deflate.
func Inflate(buf []byte) ([]byte, error) {
	out, err := codec.DecompressBytes(buf)
	return out, wrapCodecErr(err)
}

// PackInts encodes an integer stream with the best columnar encoding and the
// full codec best-of pass (DEFLATE plus the range codecs when eligible).
// This is the entry point DeepSqueeze's materialization uses for codes,
// failures, and expert mappings.
func PackInts(values []int64) []byte {
	return codec.CompressInts(values, codec.Auto)
}

// PackIntsMask is PackInts with an explicit codec selection, for callers
// plumbing a user-chosen codec policy (Options.Codec) down to the streams.
func PackIntsMask(values []int64, mask codec.Mask) []byte {
	return codec.CompressInts(values, mask)
}

// UnpackInts inverts PackInts with no expected-count bound. Prefer
// UnpackIntsMax when decoding untrusted bytes with a known value count.
func UnpackInts(buf []byte) ([]int64, error) { return UnpackIntsMax(buf, -1) }

// UnpackIntsMax inverts PackInts, rejecting streams that declare more than
// max values before allocating for them. max < 0 disables the bound.
func UnpackIntsMax(buf []byte, max int) ([]int64, error) {
	out, err := codec.DecompressInts(buf, max)
	return out, wrapCodecErr(err)
}

// PackStrings encodes a string column, choosing between a dictionary layout
// and raw length-prefixed strings, with a DEFLATE pass.
func PackStrings(values []string) []byte {
	dict := preprocess.BuildDictionary(values)
	var dictPayload []byte
	if codes, err := dict.Encode(values); err == nil {
		codes64 := make([]int64, len(codes))
		for i, c := range codes {
			codes64[i] = int64(c)
		}
		dictPayload = append([]byte{chunkCatDict}, dict.AppendBinary(nil)...)
		dictPayload = append(dictPayload, colenc.EncodeBest(codes64)...)
	}
	rawPayload := []byte{chunkCatRaw}
	rawPayload = binary.AppendUvarint(rawPayload, uint64(len(values)))
	for _, v := range values {
		rawPayload = binary.AppendUvarint(rawPayload, uint64(len(v)))
		rawPayload = append(rawPayload, v...)
	}
	a, b := Deflate(dictPayload), Deflate(rawPayload)
	if dictPayload != nil && len(a) < len(b) {
		return a
	}
	return b
}

// UnpackStrings inverts PackStrings with no expected-count bound. Prefer
// UnpackStringsMax when decoding untrusted bytes with a known value count.
func UnpackStrings(buf []byte) ([]string, error) { return UnpackStringsMax(buf, -1) }

// UnpackStringsMax inverts PackStrings, rejecting streams that declare more
// than max values before allocating for them. max < 0 disables the bound.
func UnpackStringsMax(buf []byte, max int) ([]string, error) {
	body, err := Inflate(buf)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty string chunk", ErrCorrupt)
	}
	switch body[0] {
	case chunkCatDict:
		dict, used, err := preprocess.DecodeDictionary(body[1:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		codes64, err := colenc.DecodeBestMax(body[1+used:], max)
		if err != nil {
			return nil, err
		}
		codes := make([]int, len(codes64))
		for i, c := range codes64 {
			codes[i] = int(c)
		}
		out, err := dict.Decode(codes)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return out, nil
	case chunkCatRaw:
		pos := 1
		n, sz := binary.Uvarint(body[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("%w: missing string count", ErrCorrupt)
		}
		pos += sz
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("%w: string count %d exceeds chunk", ErrCorrupt, n)
		}
		if max >= 0 && n > uint64(max) {
			return nil, fmt.Errorf("%w: string count %d exceeds expected maximum %d", ErrCorrupt, n, max)
		}
		out := make([]string, n)
		for i := range out {
			l, sz := binary.Uvarint(body[pos:])
			if sz <= 0 || uint64(len(body)-pos-sz) < l {
				return nil, fmt.Errorf("%w: truncated string %d", ErrCorrupt, i)
			}
			pos += sz
			out[i] = string(body[pos : pos+int(l)])
			pos += int(l)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown string layout %d", ErrCorrupt, body[0])
	}
}

// PackFloats encodes a float64 column, choosing between raw bits and a
// value-dictionary layout, with a DEFLATE pass. Lossless.
func PackFloats(values []float64) []byte {
	raw := make([]byte, 1, 1+8*len(values))
	raw[0] = chunkNumRaw
	for _, v := range values {
		raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
	}
	best := Deflate(raw)
	if x := Deflate(packFloatsXOR(values)); len(x) < len(best) {
		best = x
	}
	vd := preprocess.BuildValueDict(values)
	// A dictionary only pays when distinct count is well below n.
	if vd.Len() < len(values)/2 {
		ranks := make([]int64, len(values))
		ok := true
		for i, v := range values {
			r, found := vd.Rank(v)
			if !found {
				ok = false
				break
			}
			ranks[i] = int64(r)
		}
		if ok {
			payload := append([]byte{chunkNumDict}, vd.AppendBinary(nil)...)
			payload = append(payload, colenc.EncodeBest(ranks)...)
			if d := Deflate(payload); len(d) < len(best) {
				best = d
			}
		}
	}
	return best
}

// UnpackFloats inverts PackFloats with no expected-count bound. Prefer
// UnpackFloatsMax when decoding untrusted bytes with a known value count.
func UnpackFloats(buf []byte) ([]float64, error) { return UnpackFloatsMax(buf, -1) }

// UnpackFloatsMax inverts PackFloats, rejecting streams that declare more
// than max values before allocating for them. max < 0 disables the bound.
func UnpackFloatsMax(buf []byte, max int) ([]float64, error) {
	body, err := Inflate(buf)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: empty float chunk", ErrCorrupt)
	}
	switch body[0] {
	case chunkNumRaw:
		body = body[1:]
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("%w: float chunk length %d", ErrCorrupt, len(body))
		}
		if max >= 0 && len(body)/8 > max {
			return nil, fmt.Errorf("%w: float count %d exceeds expected maximum %d", ErrCorrupt, len(body)/8, max)
		}
		out := make([]float64, len(body)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
		return out, nil
	case chunkNumXor:
		return unpackFloatsXOR(body[1:], max)
	case chunkNumDict:
		vd, used, err := preprocess.DecodeValueDict(body[1:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		ranks, err := colenc.DecodeBestMax(body[1+used:], max)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(ranks))
		for i, r := range ranks {
			if r < 0 || int(r) >= vd.Len() {
				return nil, fmt.Errorf("%w: rank %d outside dictionary", ErrCorrupt, r)
			}
			out[i] = vd.Value(int(r))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown float layout %d", ErrCorrupt, body[0])
	}
}

// Write serializes t as a parquet-lite file and returns bytes written.
func Write(w io.Writer, t *dataset.Table) (int64, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version)
	var tmp []byte
	tmp = binary.AppendUvarint(tmp, uint64(t.NumRows()))
	tmp = binary.AppendUvarint(tmp, uint64(t.Schema.NumColumns()))
	buf.Write(tmp)
	crc := crc32.NewIEEE()
	for i, c := range t.Schema.Columns {
		var hdr []byte
		hdr = binary.AppendUvarint(hdr, uint64(len(c.Name)))
		hdr = append(hdr, c.Name...)
		hdr = append(hdr, byte(c.Type))
		var chunk []byte
		if c.Type == dataset.Categorical {
			chunk = PackStrings(t.Str[i])
		} else {
			chunk = PackFloats(t.Num[i])
		}
		hdr = binary.AppendUvarint(hdr, uint64(len(chunk)))
		buf.Write(hdr)
		buf.Write(chunk)
		crc.Write(chunk)
	}
	var footer [4]byte
	binary.LittleEndian.PutUint32(footer[:], crc.Sum32())
	buf.Write(footer[:])
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Read parses a file produced by Write.
func Read(r io.Reader) (*dataset.Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("colfile: read: %w", err)
	}
	if len(data) < len(magic)+1+4 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	pos := 5
	rows, sz := binary.Uvarint(data[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing row count", ErrCorrupt)
	}
	pos += sz
	ncols, sz := binary.Uvarint(data[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing column count", ErrCorrupt)
	}
	pos += sz
	if ncols > uint64(len(data)) {
		return nil, fmt.Errorf("%w: column count %d", ErrCorrupt, ncols)
	}
	schema := &dataset.Schema{Columns: make([]dataset.Column, ncols)}
	chunks := make([][]byte, ncols)
	crc := crc32.NewIEEE()
	for i := range schema.Columns {
		l, sz := binary.Uvarint(data[pos:])
		if sz <= 0 || uint64(len(data)-pos-sz) < l {
			return nil, fmt.Errorf("%w: truncated column name", ErrCorrupt)
		}
		pos += sz
		schema.Columns[i].Name = string(data[pos : pos+int(l)])
		pos += int(l)
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: truncated column type", ErrCorrupt)
		}
		typ := dataset.ColumnType(data[pos])
		if typ != dataset.Categorical && typ != dataset.Numeric {
			return nil, fmt.Errorf("%w: bad column type %d", ErrCorrupt, typ)
		}
		schema.Columns[i].Type = typ
		pos++
		cl, sz := binary.Uvarint(data[pos:])
		if sz <= 0 || uint64(len(data)-pos-sz) < cl {
			return nil, fmt.Errorf("%w: truncated chunk", ErrCorrupt)
		}
		pos += sz
		chunks[i] = data[pos : pos+int(cl)]
		crc.Write(chunks[i])
		pos += int(cl)
	}
	if len(data)-pos != 4 {
		return nil, fmt.Errorf("%w: bad footer", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[pos:]) != crc.Sum32() {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	t := dataset.NewTable(schema, int(rows))
	for i, c := range schema.Columns {
		if c.Type == dataset.Categorical {
			vals, err := UnpackStrings(chunks[i])
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			if uint64(len(vals)) != rows {
				return nil, fmt.Errorf("%w: column %q has %d rows, want %d", ErrCorrupt, c.Name, len(vals), rows)
			}
			t.Str[i] = vals
		} else {
			vals, err := UnpackFloats(chunks[i])
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			if uint64(len(vals)) != rows {
				return nil, fmt.Errorf("%w: column %q has %d rows, want %d", ErrCorrupt, c.Name, len(vals), rows)
			}
			t.Num[i] = vals
		}
	}
	t.SetNumRows(int(rows))
	return t, nil
}

// Size returns the parquet-lite encoded size of t in bytes without
// retaining the output.
func Size(t *dataset.Table) (int64, error) {
	var cw countingWriter
	return Write(&cw, t)
}

type countingWriter struct{}

func (countingWriter) Write(p []byte) (int, error) { return len(p), nil }
