package colfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"deepsqueeze/internal/bitio"
)

// XOR float compression in the style of Facebook's Gorilla TSDB: each value
// is XORed with its predecessor; slowly-varying sensor streams (the Monitor
// workload) produce mostly-zero XOR words that pack into a few bits.
// PackFloats offers this layout alongside raw and dictionary layouts and
// keeps whichever is smallest.
//
// Per value after the first: bit 0 → identical to predecessor; bits 1 +
// 6-bit leading-zero count + 6-bit (significant-bit count − 1) + the
// significant bits.
func packFloatsXOR(values []float64) []byte {
	out := binary.AppendUvarint([]byte{chunkNumXor}, uint64(len(values)))
	if len(values) == 0 {
		return out
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(values[0]))
	w := bitio.NewWriter()
	prev := math.Float64bits(values[0])
	for _, v := range values[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lz := bits.LeadingZeros64(x)
		if lz > 63 {
			lz = 63
		}
		tz := bits.TrailingZeros64(x)
		sig := 64 - lz - tz
		w.WriteBits(uint64(lz), 6)
		w.WriteBits(uint64(sig-1), 6)
		w.WriteBits(x>>uint(tz), uint(sig))
	}
	return append(out, w.Bytes()...)
}

// unpackFloatsXOR inverts packFloatsXOR (excluding the leading layout tag,
// which the caller has consumed). max < 0 disables the expected-count bound;
// either way the declared count is checked against the bitstream length
// (every value after the first costs at least one bit) before allocating.
func unpackFloatsXOR(body []byte, max int) ([]float64, error) {
	n, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: xor float count", ErrCorrupt)
	}
	if max >= 0 && n > uint64(max) {
		return nil, fmt.Errorf("%w: xor float count %d exceeds expected maximum %d", ErrCorrupt, n, max)
	}
	body = body[sz:]
	if n == 0 {
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: trailing xor bytes", ErrCorrupt)
		}
		return []float64{}, nil
	}
	if len(body) < 8 {
		return nil, fmt.Errorf("%w: missing first value", ErrCorrupt)
	}
	if n-1 > uint64(len(body)-8)*8 {
		return nil, fmt.Errorf("%w: xor float count %d exceeds bitstream", ErrCorrupt, n)
	}
	prev := binary.LittleEndian.Uint64(body)
	r := bitio.NewReader(body[8:])
	out := make([]float64, n)
	out[0] = math.Float64frombits(prev)
	for i := uint64(1); i < n; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		if bit == 0 {
			out[i] = math.Float64frombits(prev)
			continue
		}
		lz, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		sigM1, err := r.ReadBits(6)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		sig := uint(sigM1) + 1
		if uint(lz)+sig > 64 {
			return nil, fmt.Errorf("%w: xor window %d+%d", ErrCorrupt, lz, sig)
		}
		val, err := r.ReadBits(sig)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		tz := 64 - uint(lz) - sig
		x := val << tz
		prev ^= x
		out[i] = math.Float64frombits(prev)
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("%w: %d trailing xor bits", ErrCorrupt, r.Remaining())
	}
	return out, nil
}
