package colfile

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"deepsqueeze/internal/dataset"
)

func TestDeflateRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		bytes.Repeat([]byte("abc"), 1000),
	}
	for _, c := range cases {
		out, err := Inflate(Deflate(c))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, c) {
			t.Fatalf("round trip mismatch for %d bytes", len(c))
		}
	}
	// Compressible data must actually shrink.
	big := bytes.Repeat([]byte("pattern"), 2000)
	if d := Deflate(big); len(d) > len(big)/10 {
		t.Fatalf("Deflate(%d repetitive bytes) = %d", len(big), len(d))
	}
	// Incompressible data must pass through with 1 byte overhead.
	rng := rand.New(rand.NewSource(1))
	noise := make([]byte, 1000)
	rng.Read(noise)
	if d := Deflate(noise); len(d) > len(noise)+1 {
		t.Fatalf("Deflate(noise) = %d > %d", len(d), len(noise)+1)
	}
}

func TestInflateCorrupt(t *testing.T) {
	for i, c := range [][]byte{nil, {}, {2, 0}, {1, 0xFF, 0xFF}} {
		if _, err := Inflate(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPackIntsRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{0, 0, 0, 0},
		{1, -1, 100000, -100000},
	}
	for _, c := range cases {
		got, err := UnpackInts(PackInts(c))
		if err != nil {
			t.Fatal(err)
		}
		if len(c) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("PackInts round trip: %v != %v", got, c)
		}
	}
}

func TestPackStringsRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{"a"},
		{"x", "y", "x", "x", "z"},
		{"", "", "non-empty", ""},
		{"with\x00nul", "ünïcødé", "with,comma\nnewline"},
	}
	for _, c := range cases {
		got, err := UnpackStrings(PackStrings(c))
		if err != nil {
			t.Fatal(err)
		}
		if len(c) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("PackStrings round trip: %v != %v", got, c)
		}
	}
}

func TestPackStringsDictBeatsRawOnRepeats(t *testing.T) {
	repeats := make([]string, 5000)
	for i := range repeats {
		repeats[i] = fmt.Sprintf("value-%d", i%4)
	}
	packed := PackStrings(repeats)
	if len(packed) > 2000 {
		t.Fatalf("repetitive strings packed to %d bytes", len(packed))
	}
}

func TestPackFloatsRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1.5, -2.25, 1e300, -1e-300},
		{math.MaxFloat64, math.SmallestNonzeroFloat64},
		{1, 1, 1, 2, 2, 2, 3, 3, 3},
	}
	for _, c := range cases {
		got, err := UnpackFloats(PackFloats(c))
		if err != nil {
			t.Fatal(err)
		}
		if len(c) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("PackFloats round trip: %v != %v", got, c)
		}
	}
}

func TestPackFloatsDictOnLowCardinality(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i % 8)
	}
	if packed := PackFloats(vals); len(packed) > 6000 {
		t.Fatalf("low-cardinality floats packed to %d bytes (raw would be 80000)", len(packed))
	}
}

func makeTable(rows int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "city", Type: dataset.Categorical},
		dataset.Column{Name: "temp", Type: dataset.Numeric},
		dataset.Column{Name: "id", Type: dataset.Categorical},
	)
	tb := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"portland", "boston", "austin"}
	for i := 0; i < rows; i++ {
		tb.AppendRow(
			[]string{cities[rng.Intn(3)], fmt.Sprintf("id-%06d", i)},
			[]float64{20 + rng.NormFloat64()*5},
		)
	}
	return tb
}

func TestFileRoundTrip(t *testing.T) {
	tb := makeTable(500, 2)
	var buf bytes.Buffer
	n, err := Write(&buf, tb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write returned %d, buffer %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EqualWithin(got, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileEmptyTable(t *testing.T) {
	tb := dataset.NewTable(dataset.NewSchema(
		dataset.Column{Name: "a", Type: dataset.Numeric},
	), 0)
	var buf bytes.Buffer
	if _, err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.Schema.NumColumns() != 1 {
		t.Fatalf("empty table round trip: %d rows %d cols", got.NumRows(), got.Schema.NumColumns())
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	tb := makeTable(50, 3)
	var buf bytes.Buffer
	if _, err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"bad ver":   append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated": good[:len(good)-10],
	}
	// Flip a byte inside a chunk: checksum must catch it.
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0xFF
	cases["bitflip"] = flipped
	for name, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("%s: corrupt file accepted", name)
		}
	}
}

func TestSizeMatchesWrite(t *testing.T) {
	tb := makeTable(200, 4)
	var buf bytes.Buffer
	if _, err := Write(&buf, tb); err != nil {
		t.Fatal(err)
	}
	size, err := Size(tb)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(buf.Len()) {
		t.Fatalf("Size = %d, Write = %d", size, buf.Len())
	}
}

func TestParquetLiteBeatsCSVOnStructuredData(t *testing.T) {
	tb := makeTable(5000, 5)
	size, err := Size(tb)
	if err != nil {
		t.Fatal(err)
	}
	csv := tb.CSVSize()
	if size >= csv {
		t.Fatalf("parquet-lite %d ≥ CSV %d on structured data", size, csv)
	}
}

// Property: arbitrary tables round-trip exactly.
func TestQuickFileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := dataset.NewSchema(
			dataset.Column{Name: "s", Type: dataset.Categorical},
			dataset.Column{Name: "n", Type: dataset.Numeric},
		)
		tb := dataset.NewTable(schema, 16)
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			tb.AppendRow(
				[]string{fmt.Sprintf("%x", rng.Int63n(1<<uint(1+rng.Intn(30))))},
				[]float64{rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)))},
			)
		}
		var buf bytes.Buffer
		if _, err := Write(&buf, tb); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return tb.EqualWithin(got, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteTable(b *testing.B) {
	tb := makeTable(10000, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Size(tb); err != nil {
			b.Fatal(err)
		}
	}
}
