package colfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"deepsqueeze/internal/colenc"
)

// TestDeflateInvalidLevelFallsBack: a bad compression level must degrade to
// the stored form, not panic.
func TestDeflateInvalidLevelFallsBack(t *testing.T) {
	payload := []byte("the quick brown fox")
	got := deflateLevel(payload, 42)
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("invalid level should produce stored form, got tag %d", got[0])
	}
	out, err := Inflate(got)
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("stored fallback round-trip = %q, %v", out, err)
	}
}

// TestDeflateValidLevelStillCompresses guards the refactor: compressible
// input at a valid level keeps the DEFLATE form.
func TestDeflateValidLevelStillCompresses(t *testing.T) {
	payload := bytes.Repeat([]byte("abcd"), 256)
	got := Deflate(payload)
	if got[0] != 1 {
		t.Fatalf("compressible payload should keep DEFLATE form, got tag %d", got[0])
	}
	out, err := Inflate(got)
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("round-trip failed: %v", err)
	}
}

// isCorrupt reports whether err is a corruption error from this package or
// from the colenc layer it delegates to (the Max bound can trip in either).
func isCorrupt(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, colenc.ErrCorrupt)
}

// TestUnpackMaxRejectsOversizedCounts covers each typed unpacker's
// expected-count bound.
func TestUnpackMaxRejectsOversizedCounts(t *testing.T) {
	ints := PackInts([]int64{1, 1, 1, 1, 1, 1, 1, 1})
	if _, err := UnpackIntsMax(ints, 3); !isCorrupt(err) {
		t.Fatalf("UnpackIntsMax(8 values, max 3) = %v, want corrupt error", err)
	}
	if got, err := UnpackIntsMax(ints, 8); err != nil || len(got) != 8 {
		t.Fatalf("UnpackIntsMax at exact bound = %d values, %v", len(got), err)
	}

	strs := PackStrings([]string{"a", "b", "c", "d"})
	if _, err := UnpackStringsMax(strs, 2); !isCorrupt(err) {
		t.Fatalf("UnpackStringsMax(4 values, max 2) = %v, want corrupt error", err)
	}
	if got, err := UnpackStringsMax(strs, 4); err != nil || len(got) != 4 {
		t.Fatalf("UnpackStringsMax at exact bound = %d values, %v", len(got), err)
	}

	floats := PackFloats([]float64{1.5, 2.5, 3.5, 4.5, 5.5})
	if _, err := UnpackFloatsMax(floats, 2); !isCorrupt(err) {
		t.Fatalf("UnpackFloatsMax(5 values, max 2) = %v, want corrupt error", err)
	}
	if got, err := UnpackFloatsMax(floats, 5); err != nil || len(got) != 5 {
		t.Fatalf("UnpackFloatsMax at exact bound = %d values, %v", len(got), err)
	}
}

// TestXORFloatCountBounds: the XOR layout's declared count is bounded both
// by the bitstream length and by the caller's max, before allocation.
func TestXORFloatCountBounds(t *testing.T) {
	// A crafted chunk declaring 2^50 values with an 8-byte body.
	body := binary.AppendUvarint(nil, uint64(1)<<50)
	body = binary.LittleEndian.AppendUint64(body, math.Float64bits(1.0))
	if _, err := unpackFloatsXOR(body, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unpackFloatsXOR(n=2^50, empty stream) = %v, want ErrCorrupt", err)
	}

	// A genuine XOR chunk hits the max bound.
	vals := []float64{1.0, 1.0, 1.0, 2.0, 2.0, 4.0}
	packed := packFloatsXOR(vals)
	if _, err := unpackFloatsXOR(packed[1:], 3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unpackFloatsXOR(6 values, max 3) = %v, want ErrCorrupt", err)
	}
	got, err := unpackFloatsXOR(packed[1:], len(vals))
	if err != nil || len(got) != len(vals) {
		t.Fatalf("unpackFloatsXOR at exact bound = %d values, %v", len(got), err)
	}
}

// TestInflateBombCap: a chunk inflating past maxInflatedBytes is rejected
// instead of exhausting memory. Built by deflating all-zero input, whose
// compressed form is tiny relative to its expansion.
func TestInflateBombCap(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates maxInflatedBytes once")
	}
	payload := make([]byte, maxInflatedBytes+1)
	chunk := Deflate(payload)
	if chunk[0] != 1 {
		t.Fatal("zero payload should have taken the DEFLATE form")
	}
	if _, err := Inflate(chunk); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Inflate(bomb) = %v, want ErrCorrupt", err)
	}
}
