package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"deepsqueeze/internal/colenc"
)

// skewedValues builds the stream shape the range codecs exist for: failure
// ranks concentrated at 0 with an exponential tail.
func skewedValues(n int, alphabet int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		v := int64(rng.ExpFloat64() * float64(alphabet) / 16)
		if v >= int64(alphabet) {
			v = int64(alphabet) - 1
		}
		out[i] = v
	}
	return out
}

func roundTripInts(t *testing.T, values []int64, mask Mask) []byte {
	t.Helper()
	frame := CompressInts(values, mask)
	got, err := DecompressInts(frame, len(values))
	if err != nil {
		t.Fatalf("mask %v: decompress: %v", mask, err)
	}
	if len(got) != len(values) {
		t.Fatalf("mask %v: got %d values, want %d", mask, len(got), len(values))
	}
	for i := range got {
		if got[i] != values[i] {
			t.Fatalf("mask %v: value %d = %d, want %d", mask, i, got[i], values[i])
		}
	}
	return frame
}

func TestCompressIntsRoundTripAllMasks(t *testing.T) {
	streams := map[string][]int64{
		"empty":      nil,
		"single":     {42},
		"negatives":  {-5, -5, -5, -2, -5, 0, -5, -5},
		"skewed":     skewedValues(4000, 64, 1),
		"uniform":    skewedValues(500, 1<<14, 2),
		"wide-span":  {0, 1 << 40, -1 << 40, 7},
		"full-range": {-(1 << 62), 1 << 62},
	}
	streams["constant"] = make([]int64, 2000)
	for i := range streams["constant"] {
		streams["constant"][i] = 9
	}
	masks := []Mask{0, Auto, MaskStored, ByteOnly, MaskStored | MaskRangeAdaptive, MaskStored | MaskRangeCPT, MaskStored | MaskRangeAdaptive | MaskRangeCPT}
	for name, values := range streams {
		for _, mask := range masks {
			t.Run(name+"/"+mask.String(), func(t *testing.T) {
				roundTripInts(t, values, mask)
			})
		}
	}
}

// The selector's contract: enabling the range codecs can never produce a
// frame larger than the stored/DEFLATE pair would have, because candidates
// only replace the incumbent when strictly smaller.
func TestBestOfNeverLosesToDeflate(t *testing.T) {
	streams := [][]int64{
		nil,
		{1},
		skewedValues(3000, 32, 3),
		skewedValues(100, 1<<12, 4),
		{-9, 0, 9, -9, 0, 9},
	}
	rng := rand.New(rand.NewSource(5))
	noise := make([]int64, 2000)
	for i := range noise {
		noise[i] = rng.Int63() // incompressible: stored should win everywhere
	}
	streams = append(streams, noise)
	for i, values := range streams {
		auto := CompressInts(values, Auto)
		deflate := CompressInts(values, ByteOnly)
		if len(auto) > len(deflate) {
			t.Errorf("stream %d: auto frame %dB > deflate frame %dB", i, len(auto), len(deflate))
		}
	}
}

// On heavily skewed streams the range codecs must actually win — that is the
// point of shipping them.
func TestRangeWinsOnSkewedStream(t *testing.T) {
	values := skewedValues(20000, 256, 6)
	auto := CompressInts(values, Auto)
	deflate := CompressInts(values, ByteOnly)
	if auto[0] != TagRangeAdaptive && auto[0] != TagRangeCPT {
		t.Fatalf("auto chose %s on a skewed stream", Name(auto[0]))
	}
	if len(auto) >= len(deflate) {
		t.Fatalf("range frame %dB did not beat deflate %dB", len(auto), len(deflate))
	}
}

// Determinism underpins byte-identical archives at every parallelism level:
// same values, same mask → same frame bytes.
func TestCompressIntsDeterministic(t *testing.T) {
	values := skewedValues(5000, 128, 7)
	first := CompressInts(values, Auto)
	for i := 0; i < 3; i++ {
		if !bytes.Equal(CompressInts(values, Auto), first) {
			t.Fatal("CompressInts is not deterministic")
		}
	}
}

func TestCompressBytesRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("deepsqueeze "), 500),
		{0x01, 0x9f, 0x3a, 0xc4}, // incompressible: stored frame
	}
	for i, p := range payloads {
		for _, mask := range []Mask{Auto, ByteOnly, MaskStored} {
			frame := CompressBytes(p, mask)
			got, err := DecompressBytes(frame)
			if err != nil {
				t.Fatalf("payload %d mask %v: %v", i, mask, err)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("payload %d mask %v: round trip mismatch", i, mask)
			}
		}
	}
	if frame := CompressBytes([]byte{0x01, 0x9f, 0x3a, 0xc4}, Auto); frame[0] != TagStored {
		t.Fatalf("incompressible payload framed as %s", Name(frame[0]))
	}
}

func TestDeflateLevelInvalidLevelFallsBack(t *testing.T) {
	p := bytes.Repeat([]byte("abc"), 100)
	frame := DeflateLevel(p, 1234) // invalid level → stored fallback, no panic
	if frame[0] != TagStored {
		t.Fatalf("invalid level framed as %s", Name(frame[0]))
	}
	got, err := DecompressBytes(frame)
	if err != nil || !bytes.Equal(got, p) {
		t.Fatalf("fallback frame did not round trip: %v", err)
	}
}

func TestParseMaskAndString(t *testing.T) {
	cases := map[string]Mask{
		"":               Auto,
		"auto":           Auto,
		" Auto ":         Auto,
		"stored":         MaskStored,
		"deflate":        MaskStored | MaskDeflate,
		"range":          MaskStored | MaskRangeAdaptive | MaskRangeCPT,
		"range-adaptive": MaskStored | MaskRangeAdaptive,
		"range-cpt":      MaskStored | MaskRangeCPT,
	}
	for s, want := range cases {
		got, err := ParseMask(s)
		if err != nil {
			t.Fatalf("ParseMask(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseMask(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseMask("lzma"); err == nil {
		t.Fatal("ParseMask accepted an unknown codec")
	}
	// String must invert ParseMask for every accepted name.
	for _, s := range []string{"auto", "stored", "deflate", "range", "range-adaptive", "range-cpt"} {
		m, _ := ParseMask(s)
		if m.String() != s {
			t.Fatalf("Mask(%q).String() = %q", s, m.String())
		}
	}
}

func TestName(t *testing.T) {
	want := map[byte]string{TagStored: "stored", TagDeflate: "deflate", TagRangeAdaptive: "range-adaptive", TagRangeCPT: "range-cpt"}
	for tag, name := range want {
		if Name(tag) != name {
			t.Fatalf("Name(%d) = %q, want %q", tag, Name(tag), name)
		}
	}
	if Name(77) != "unknown(77)" {
		t.Fatalf("Name(77) = %q", Name(77))
	}
}

// wantCorrupt asserts a decode fails with ErrCorrupt — never a panic, never
// a silent success.
func wantCorrupt(t *testing.T, name string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: decoded successfully", name)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error %v is not ErrCorrupt", name, err)
	}
}

func TestDecompressCorruptFrames(t *testing.T) {
	valid := CompressInts(skewedValues(500, 16, 8), MaskStored|MaskRangeAdaptive)
	if valid[0] != TagRangeAdaptive {
		t.Fatalf("setup: expected a range frame, got %s", Name(valid[0]))
	}
	header := func(tag byte, count uint64, base int64, alphabet uint64) []byte {
		out := []byte{tag}
		out = binary.AppendUvarint(out, count)
		out = binary.AppendVarint(out, base)
		out = binary.AppendUvarint(out, alphabet)
		return out
	}
	cases := map[string][]byte{
		"empty frame":      {},
		"unknown tag":      {9, 1, 2, 3},
		"bare range tag":   {TagRangeAdaptive},
		"missing base":     binary.AppendUvarint([]byte{TagRangeAdaptive}, 5),
		"missing alphabet": binary.AppendVarint(binary.AppendUvarint([]byte{TagRangeAdaptive}, 5), 0),
		"zero alphabet":    header(TagRangeAdaptive, 5, 0, 0),
		"huge alphabet":    header(TagRangeAdaptive, 5, 0, maxRangeAlphabet+1),
		"huge count":       header(TagRangeAdaptive, maxRangeValues+1, 0, 4),
		// The coder's final flush bytes may go unread, so trim deep into the
		// body rather than just off the tail.
		"truncated body":     valid[:len(valid)/2],
		"missing cpt table":  header(TagRangeCPT, 5, 0, 64),
		"truncated deflate":  {TagDeflate, 0x01},
		"range in cpt table": append(header(TagRangeCPT, 1, 0, 3), 0xff, 0xff), // table shorter than alphabet
	}
	for name, frame := range cases {
		_, err := DecompressInts(frame, -1)
		wantCorrupt(t, name, err)
	}
	// count > caller bound is rejected before allocation.
	_, err := DecompressInts(valid, 10)
	wantCorrupt(t, "count over caller max", err)
	// Byte streams reject range tags outright.
	_, err = DecompressBytes(valid)
	wantCorrupt(t, "range tag in byte stream", err)
	_, err = DecompressBytes(nil)
	wantCorrupt(t, "empty byte frame", err)
}

// A CPT table whose quantized total would exceed the coder limit must be
// rejected before any symbol decode (which would panic).
func TestCorruptCPTTotalRejected(t *testing.T) {
	alphabet := 1 << 10
	frame := []byte{TagRangeCPT}
	frame = binary.AppendUvarint(frame, 4)
	frame = binary.AppendVarint(frame, 0)
	frame = binary.AppendUvarint(frame, uint64(alphabet))
	for i := 0; i < alphabet; i++ {
		frame = append(frame, 0xff) // freq 256 each → tot 262144 > MaxTotal
	}
	frame = append(frame, 0, 0, 0, 0)
	_, err := DecompressInts(frame, -1)
	wantCorrupt(t, "cpt total overflow", err)
}

// A deflate bomb must be cut at MaxInflatedBytes, not materialized. Building
// a >256 MiB plaintext is too slow for a unit test, so this exercises the
// cap indirectly: a frame whose DEFLATE body inflates fine stays accepted,
// and the cap constant guards the LimitReader path (covered by the archive
// harden tests at the colfile layer). Here we at least pin the constant.
func TestInflationCapConstant(t *testing.T) {
	if MaxInflatedBytes != 1<<28 {
		t.Fatalf("MaxInflatedBytes = %d; changing it breaks archived bomb defenses", MaxInflatedBytes)
	}
}

func TestInspectInts(t *testing.T) {
	values := skewedValues(5000, 64, 9)
	stored := int64(len(colenc.EncodeBest(values))) + 1
	for _, mask := range []Mask{MaskStored, ByteOnly, Auto} {
		frame := CompressInts(values, mask)
		info, err := InspectInts(frame, len(values))
		if err != nil {
			t.Fatalf("mask %v: %v", mask, err)
		}
		if info.Codec != Name(frame[0]) {
			t.Fatalf("mask %v: codec %q, frame tag %s", mask, info.Codec, Name(frame[0]))
		}
		if info.FrameBytes != int64(len(frame)) {
			t.Fatalf("mask %v: FrameBytes %d, want %d", mask, info.FrameBytes, len(frame))
		}
		if info.RawBytes != stored {
			t.Fatalf("mask %v: RawBytes %d, want stored size %d", mask, info.RawBytes, stored)
		}
	}
	frame := CompressInts(values, Auto)
	if frame[0] != TagRangeAdaptive && frame[0] != TagRangeCPT {
		t.Fatalf("setup: auto frame is %s", Name(frame[0]))
	}
	info, _ := InspectInts(frame, len(values))
	if info.Values != len(values) {
		t.Fatalf("range frame Values = %d, want %d", info.Values, len(values))
	}
	if _, err := InspectInts(nil, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatal("InspectInts accepted an empty frame")
	}
}

func TestInspectBytes(t *testing.T) {
	p := bytes.Repeat([]byte("col"), 400)
	frame := CompressBytes(p, Auto)
	info, err := InspectBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if info.Codec != "deflate" || info.FrameBytes != int64(len(frame)) || info.RawBytes != int64(len(p))+1 {
		t.Fatalf("unexpected info %+v", info)
	}
	if _, err := InspectBytes(CompressInts(skewedValues(500, 8, 10), Auto)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("InspectBytes accepted a range frame")
	}
}

// Frames written by the historical colfile tag-byte scheme (tag 0/1 around a
// colenc body) must decode unchanged — they are what every existing archive
// contains.
func TestLegacyTagBytesStillDecode(t *testing.T) {
	values := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	enc := colenc.EncodeBest(values)
	legacyStored := append([]byte{0}, enc...)
	got, err := DecompressInts(legacyStored, len(values))
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatal("legacy stored frame mismatch")
		}
	}
	var buf bytes.Buffer
	buf.WriteByte(1)
	fw, _ := flate.NewWriter(&buf, flate.BestCompression)
	fw.Write(enc)
	fw.Close()
	got, err = DecompressInts(buf.Bytes(), len(values))
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatal("legacy deflate frame mismatch")
		}
	}
}
