// Package codec is the pluggable per-stream compression layer behind every
// archive chunk. A stream is wrapped in a self-describing frame whose first
// byte names the codec; tags 0 (stored) and 1 (DEFLATE) are the historical
// colfile tag byte, so every archive ever written decodes unchanged, and tags
// 2–3 add range coding against learned symbol models (paper §6.3's entropy
// stage; the Squish-style arithmetic coder applied to DeepSqueeze's streams).
//
// Integer streams — failure ranks, truncated codes, dictionary codes — are
// the range codecs' territory: their alphabets are small and heavily skewed
// (ranks concentrate at 0 by construction), which adaptive range coding
// exploits below the 1-bit-per-symbol floor a Huffman-based byte codec
// cannot cross. Byte streams (string/float chunk layouts, the decoder
// section) use the stored/DEFLATE pair only.
//
// CompressInts is a best-of selector: it builds a frame per eligible codec
// and keeps the smallest, so enabling the range codecs can never lose to
// DEFLATE by more than the shared tag byte.
package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"deepsqueeze/internal/colenc"
	"deepsqueeze/internal/rangecoder"
)

// ErrCorrupt is returned when a stream frame fails validation.
var ErrCorrupt = errors.New("codec: corrupt stream frame")

// Frame tags. Part of the on-disk format; do not renumber. Tags 0 and 1 are
// byte-identical to the pre-codec colfile stored/DEFLATE tag byte.
const (
	TagStored        byte = 0 // payload as-is
	TagDeflate       byte = 1 // raw DEFLATE (compress/flate, not gzip)
	TagRangeAdaptive byte = 2 // range-coded ints, adaptive frequency model
	TagRangeCPT      byte = 3 // range-coded ints, static quantized table
)

// Mask selects which codecs the best-of selector may try. The zero Mask
// means Auto; Stored is always implied — every stream needs a fallback that
// can represent it.
type Mask uint8

// Mask bits, one per frame tag.
const (
	MaskStored Mask = 1 << iota
	MaskDeflate
	MaskRangeAdaptive
	MaskRangeCPT
)

// Auto enables every codec: the default best-of-all selection.
const Auto = MaskStored | MaskDeflate | MaskRangeAdaptive | MaskRangeCPT

// ByteOnly is the historical stored/DEFLATE pair — the only codecs byte
// (non-integer) streams can use, and the pre-codec archive behavior.
const ByteOnly = MaskStored | MaskDeflate

// normalize resolves the zero value to Auto and forces the Stored fallback.
func (m Mask) normalize() Mask {
	if m == 0 {
		return Auto
	}
	return m | MaskStored
}

// String names the mask in ParseMask's vocabulary.
func (m Mask) String() string {
	switch m.normalize() {
	case Auto:
		return "auto"
	case MaskStored:
		return "stored"
	case MaskStored | MaskDeflate:
		return "deflate"
	case MaskStored | MaskRangeAdaptive | MaskRangeCPT:
		return "range"
	case MaskStored | MaskRangeAdaptive:
		return "range-adaptive"
	case MaskStored | MaskRangeCPT:
		return "range-cpt"
	}
	var parts []string
	for _, c := range []struct {
		bit  Mask
		name string
	}{{MaskStored, "stored"}, {MaskDeflate, "deflate"}, {MaskRangeAdaptive, "range-adaptive"}, {MaskRangeCPT, "range-cpt"}} {
		if m.normalize()&c.bit != 0 {
			parts = append(parts, c.name)
		}
	}
	return strings.Join(parts, "+")
}

// ParseMask resolves a codec-selection name: "auto" (or empty) tries every
// codec, "deflate" is the pre-codec stored/DEFLATE behavior, "stored"
// disables compression, and "range" / "range-adaptive" / "range-cpt" force
// the learned codecs (with the stored fallback streams always keep).
func ParseMask(s string) (Mask, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "stored":
		return MaskStored, nil
	case "deflate":
		return MaskStored | MaskDeflate, nil
	case "range":
		return MaskStored | MaskRangeAdaptive | MaskRangeCPT, nil
	case "range-adaptive":
		return MaskStored | MaskRangeAdaptive, nil
	case "range-cpt":
		return MaskStored | MaskRangeCPT, nil
	}
	return 0, fmt.Errorf("codec: unknown codec %q (want auto, stored, deflate, range, range-adaptive, or range-cpt)", s)
}

// Name returns the human-readable codec name for a frame tag.
func Name(tag byte) string {
	switch tag {
	case TagStored:
		return "stored"
	case TagDeflate:
		return "deflate"
	case TagRangeAdaptive:
		return "range-adaptive"
	case TagRangeCPT:
		return "range-cpt"
	}
	return fmt.Sprintf("unknown(%d)", tag)
}

// MaxInflatedBytes caps the output of a single DEFLATE frame. DEFLATE tops
// out near 1032:1, so reaching this cap takes a ~256 KiB compressed chunk —
// far beyond anything this codebase writes — while a crafted bomb in a
// corrupt archive is cut off instead of exhausting memory.
const MaxInflatedBytes = 1 << 28

// maxRangeValues caps both the symbol count a range frame may carry and the
// count an unbounded decode will honor — the range-codec analogue of
// MaxInflatedBytes (a range frame decodes to at most 8·maxRangeValues
// bytes of int64s). Streams longer than this fall back to the byte codecs.
const maxRangeValues = 1 << 25

// maxRangeAlphabet bounds the symbol alphabet (max−min+1) a range frame may
// declare. Wide alphabets make poor range candidates — the adaptive model
// starts uniform and the CPT frame ships one table byte per symbol — and the
// bound keeps model totals comfortably inside rangecoder.MaxTotal.
const maxRangeAlphabet = 1 << 15

// rangeInc is the adaptive model's frequency increment. It is part of the
// frame format: encoder and decoder must agree on it for lockstep adaptation.
const rangeInc = 32

// CompressBytes wraps an opaque byte payload in the smallest eligible frame.
// Byte streams are stored/DEFLATE territory; range bits in the mask are
// ignored (a byte payload has no symbol alphabet to model).
func CompressBytes(payload []byte, mask Mask) []byte {
	if mask.normalize()&MaskDeflate != 0 {
		return DeflateLevel(payload, flate.BestCompression)
	}
	out := make([]byte, 0, len(payload)+1)
	out = append(out, TagStored)
	return append(out, payload...)
}

// DeflateLevel frames payload at an explicit DEFLATE level, keeping the
// compressed form only when strictly smaller. Any writer failure — including
// an invalid level — falls back to the stored form, so the result is always
// a valid frame and the encoder never panics.
func DeflateLevel(payload []byte, level int) []byte {
	var buf bytes.Buffer
	buf.WriteByte(TagDeflate)
	if fw, err := flate.NewWriter(&buf, level); err == nil {
		if _, err := fw.Write(payload); err == nil {
			if err := fw.Close(); err == nil && buf.Len() < len(payload)+1 {
				return buf.Bytes()
			}
		}
	}
	out := make([]byte, 0, len(payload)+1)
	out = append(out, TagStored)
	return append(out, payload...)
}

// DecompressBytes inverts CompressBytes. Only the byte codecs are legal
// here; a range tag in a byte stream is a format violation.
func DecompressBytes(frame []byte) ([]byte, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("%w: empty chunk", ErrCorrupt)
	}
	switch frame[0] {
	case TagStored:
		return frame[1:], nil
	case TagDeflate:
		return inflate(frame[1:])
	case TagRangeAdaptive, TagRangeCPT:
		return nil, fmt.Errorf("%w: range frame in a byte stream", ErrCorrupt)
	default:
		return nil, fmt.Errorf("%w: unknown stream codec tag %d", ErrCorrupt, frame[0])
	}
}

// inflate decompresses a raw DEFLATE body under the inflation cap.
func inflate(body []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(body))
	out, err := io.ReadAll(io.LimitReader(fr, MaxInflatedBytes+1))
	if err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
	}
	if len(out) > MaxInflatedBytes {
		return nil, fmt.Errorf("%w: inflated chunk exceeds %d bytes", ErrCorrupt, MaxInflatedBytes)
	}
	return out, fr.Close()
}

// CompressInts encodes an integer stream with the smallest eligible frame:
// the colenc stored form, its DEFLATE pass, and — when the stream has a
// modelable alphabet — the two range codecs. Candidates are tried in tag
// order and replaced only when strictly smaller, so the choice is a pure
// function of the stream bytes (deterministic at every parallelism level).
func CompressInts(values []int64, mask Mask) []byte {
	mask = mask.normalize()
	enc := colenc.EncodeBest(values)
	best := make([]byte, 0, len(enc)+1)
	best = append(best, TagStored)
	best = append(best, enc...)
	if mask&MaskDeflate != 0 {
		if f := DeflateLevel(enc, flate.BestCompression); len(f) < len(best) {
			best = f
		}
	}
	if mask&(MaskRangeAdaptive|MaskRangeCPT) == 0 || len(values) == 0 || len(values) > maxRangeValues {
		return best
	}
	base, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < base {
			base = v
		}
		if v > hi {
			hi = v
		}
	}
	// uint64 subtraction is exact for any int64 pair with hi ≥ base.
	span := uint64(hi) - uint64(base)
	if span >= maxRangeAlphabet {
		return best
	}
	alphabet := int(span) + 1
	if mask&MaskRangeAdaptive != 0 {
		if f := appendRangeAdaptive(values, base, alphabet); len(f) < len(best) {
			best = f
		}
	}
	if mask&MaskRangeCPT != 0 {
		if f := appendRangeCPT(values, base, alphabet); len(f) < len(best) {
			best = f
		}
	}
	return best
}

// DecompressInts inverts CompressInts, rejecting streams that declare more
// than max values before allocating for them. max < 0 disables the bound
// (range frames then fall back to the maxRangeValues cap).
func DecompressInts(frame []byte, max int) ([]int64, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("%w: empty chunk", ErrCorrupt)
	}
	switch frame[0] {
	case TagStored:
		return colenc.DecodeBestMax(frame[1:], max)
	case TagDeflate:
		body, err := inflate(frame[1:])
		if err != nil {
			return nil, err
		}
		return colenc.DecodeBestMax(body, max)
	case TagRangeAdaptive, TagRangeCPT:
		return decodeRangeInts(frame, max)
	default:
		return nil, fmt.Errorf("%w: unknown stream codec tag %d", ErrCorrupt, frame[0])
	}
}

// rangeHeader writes the shared range-frame prefix: tag, symbol count,
// zigzag-coded base value (the stream minimum), and alphabet size.
func rangeHeader(tag byte, count int, base int64, alphabet int) []byte {
	out := make([]byte, 1, 16)
	out[0] = tag
	out = binary.AppendUvarint(out, uint64(count))
	out = binary.AppendVarint(out, base)
	out = binary.AppendUvarint(out, uint64(alphabet))
	return out
}

// appendRangeAdaptive builds a TagRangeAdaptive frame: symbols v−base coded
// against an adaptive model that starts uniform and learns the stream's skew
// as it goes. Nothing but the header is shipped — the decoder rebuilds the
// identical model trajectory.
func appendRangeAdaptive(values []int64, base int64, alphabet int) []byte {
	out := rangeHeader(TagRangeAdaptive, len(values), base, alphabet)
	m := rangecoder.NewAdaptiveModel(alphabet, rangeInc)
	e := rangecoder.NewEncoder()
	for _, v := range values {
		m.EncodeSymbol(e, int(v-base))
	}
	return append(out, e.Bytes()...)
}

// appendRangeCPT builds a TagRangeCPT frame: a squish-style quantized
// frequency table (one byte per alphabet symbol) followed by symbols coded
// against those static statistics. Pays the table up front in exchange for
// full-strength statistics from the first symbol — the better trade on short
// or stationary streams.
func appendRangeCPT(values []int64, base int64, alphabet int) []byte {
	counts := make([]int, alphabet)
	for _, v := range values {
		counts[v-base]++
	}
	t := newStaticTable(counts, alphabet)
	out := rangeHeader(TagRangeCPT, len(values), base, alphabet)
	out = t.appendBinary(out)
	e := rangecoder.NewEncoder()
	for _, v := range values {
		s := int(v - base)
		e.Encode(t.cum[s], uint32(t.freq[s]), t.tot)
	}
	return append(out, e.Bytes()...)
}

// decodeRangeInts decodes a range frame of either flavor. Every declared
// quantity is bounds-checked before allocation, and the coder's overrun
// counter is consulted per symbol so a truncated body fails with ErrCorrupt
// instead of silently decoding zero padding.
func decodeRangeInts(frame []byte, max int) ([]int64, error) {
	r := frame[1:]
	count64, n := binary.Uvarint(r)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing range symbol count", ErrCorrupt)
	}
	r = r[n:]
	if max >= 0 && count64 > uint64(max) {
		return nil, fmt.Errorf("%w: range frame declares %d values, expected at most %d", ErrCorrupt, count64, max)
	}
	if count64 > maxRangeValues {
		return nil, fmt.Errorf("%w: range frame declares %d values", ErrCorrupt, count64)
	}
	base, n := binary.Varint(r)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing range base", ErrCorrupt)
	}
	r = r[n:]
	alphabet64, n := binary.Uvarint(r)
	if n <= 0 {
		return nil, fmt.Errorf("%w: missing range alphabet", ErrCorrupt)
	}
	r = r[n:]
	if alphabet64 == 0 || alphabet64 > maxRangeAlphabet {
		return nil, fmt.Errorf("%w: range alphabet %d", ErrCorrupt, alphabet64)
	}
	alphabet := int(alphabet64)
	var decodeSym func(*rangecoder.Decoder) int
	if frame[0] == TagRangeCPT {
		t, used, err := parseStaticTable(r, alphabet)
		if err != nil {
			return nil, err
		}
		r = r[used:]
		decodeSym = t.decode
	} else {
		m := rangecoder.NewAdaptiveModel(alphabet, rangeInc)
		decodeSym = m.DecodeSymbol
	}
	out := make([]int64, count64)
	if count64 == 0 {
		return out, nil
	}
	d := rangecoder.NewDecoder(r)
	for i := range out {
		out[i] = base + int64(decodeSym(d))
		if d.Overrun() {
			return nil, fmt.Errorf("%w: range frame truncated at symbol %d", ErrCorrupt, i)
		}
	}
	return out, nil
}

// staticTable is a quantized frequency table over a frame's alphabet, the
// in-frame twin of squish's CPT: frequencies 1..256 serialized as one byte
// each (freq−1), cumulative totals kept within the range coder's budget.
type staticTable struct {
	freq []uint16
	cum  []uint32 // cumulative, len = alphabet+1
	tot  uint32
}

// newStaticTable quantizes raw counts, giving every symbol frequency ≥ 1
// (Laplace smoothing) and scaling the largest count to the byte budget.
func newStaticTable(counts []int, alphabet int) *staticTable {
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	limit := 255
	if alphabet*256 > int(rangecoder.MaxTotal) {
		limit = int(rangecoder.MaxTotal)/alphabet - 1
		if limit < 1 {
			limit = 1
		}
	}
	t := &staticTable{freq: make([]uint16, alphabet)}
	for s := range t.freq {
		f := 1
		if s < len(counts) && counts[s] > 0 {
			f = 1 + counts[s]*(limit-1)/maxCount
		}
		t.freq[s] = uint16(f)
	}
	t.finish()
	return t
}

func (t *staticTable) finish() {
	t.cum = make([]uint32, len(t.freq)+1)
	var acc uint32
	for s, f := range t.freq {
		t.cum[s] = acc
		acc += uint32(f)
	}
	t.cum[len(t.freq)] = acc
	t.tot = acc
}

// parseStaticTable decodes an in-frame table, rejecting totals the range
// coder cannot represent (a crafted wide-alphabet table would otherwise
// panic the decoder).
func parseStaticTable(buf []byte, alphabet int) (*staticTable, int, error) {
	if len(buf) < alphabet {
		return nil, 0, fmt.Errorf("%w: truncated range frequency table", ErrCorrupt)
	}
	t := &staticTable{freq: make([]uint16, alphabet)}
	for s := range t.freq {
		t.freq[s] = uint16(buf[s]) + 1
	}
	t.finish()
	if t.tot > rangecoder.MaxTotal {
		return nil, 0, fmt.Errorf("%w: range frequency total %d exceeds coder limit", ErrCorrupt, t.tot)
	}
	return t, alphabet, nil
}

// decode reads one symbol against the static statistics.
func (t *staticTable) decode(d *rangecoder.Decoder) int {
	target := d.DecodeFreq(t.tot)
	s := sort.Search(len(t.freq), func(i int) bool { return t.cum[i+1] > target })
	d.Update(t.cum[s], uint32(t.freq[s]), t.tot)
	return s
}

// appendBinary serializes the frequency table (freq−1 always fits a byte:
// wide alphabets shrink the quantization limit accordingly).
func (t *staticTable) appendBinary(dst []byte) []byte {
	for _, f := range t.freq {
		dst = append(dst, byte(f-1))
	}
	return dst
}

// FrameInfo describes one frame for inspection tooling: which codec was
// chosen, the frame's size, and the stream's stored-form ("raw") size — the
// bytes the stream would occupy before any byte- or range-entropy pass, so
// compressed-vs-raw ratios are comparable across codecs.
type FrameInfo struct {
	Codec      string
	FrameBytes int64
	RawBytes   int64
	// Values is the symbol count a range frame declares; 0 for byte codecs
	// (their frames do not carry a count).
	Values int
}

// InspectInts classifies an integer-stream frame. Stored frames read their
// size directly; DEFLATE frames inflate (under the cap) to recover the
// stored-form size; range frames decode and re-encode through colenc so the
// reported raw size is the same stored form the other tags report.
func InspectInts(frame []byte, max int) (FrameInfo, error) {
	if len(frame) == 0 {
		return FrameInfo{}, fmt.Errorf("%w: empty chunk", ErrCorrupt)
	}
	info := FrameInfo{Codec: Name(frame[0]), FrameBytes: int64(len(frame))}
	switch frame[0] {
	case TagStored:
		info.RawBytes = int64(len(frame))
	case TagDeflate:
		body, err := inflate(frame[1:])
		if err != nil {
			return FrameInfo{}, err
		}
		info.RawBytes = int64(len(body)) + 1
	case TagRangeAdaptive, TagRangeCPT:
		values, err := decodeRangeInts(frame, max)
		if err != nil {
			return FrameInfo{}, err
		}
		info.Values = len(values)
		info.RawBytes = int64(len(colenc.EncodeBest(values))) + 1
	default:
		return FrameInfo{}, fmt.Errorf("%w: unknown stream codec tag %d", ErrCorrupt, frame[0])
	}
	return info, nil
}

// InspectBytes classifies a byte-stream frame (string/float chunk layouts,
// decoder sections): stored or DEFLATE only.
func InspectBytes(frame []byte) (FrameInfo, error) {
	if len(frame) == 0 {
		return FrameInfo{}, fmt.Errorf("%w: empty chunk", ErrCorrupt)
	}
	info := FrameInfo{Codec: Name(frame[0]), FrameBytes: int64(len(frame))}
	switch frame[0] {
	case TagStored:
		info.RawBytes = int64(len(frame))
	case TagDeflate:
		body, err := inflate(frame[1:])
		if err != nil {
			return FrameInfo{}, err
		}
		info.RawBytes = int64(len(body)) + 1
	default:
		return FrameInfo{}, fmt.Errorf("%w: unknown stream codec tag %d", ErrCorrupt, frame[0])
	}
	return info, nil
}
