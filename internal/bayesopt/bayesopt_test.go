package bayesopt

import (
	"math"
	"math/rand"
	"testing"
)

// grid2d builds a normalized 2-D grid of n×n points over [0,1]².
func grid2d(n int) [][]float64 {
	var g [][]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g = append(g, []float64{float64(i) / float64(n-1), float64(j) / float64(n-1)})
		}
	}
	return g
}

func TestFindsMinimumFasterThanRandom(t *testing.T) {
	// Smooth bowl with minimum at (0.7, 0.3).
	obj := func(p []float64) float64 {
		dx, dy := p[0]-0.7, p[1]-0.3
		return dx*dx + dy*dy
	}
	grid := grid2d(8) // 64 candidates
	budget := 15

	run := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		o, err := New(rng, grid)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < budget; i++ {
			idx := o.Next()
			o.Observe(idx, obj(grid[idx]))
		}
		_, best := o.Best()
		return best
	}
	randomRun := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		best := math.Inf(1)
		perm := rng.Perm(len(grid))
		for i := 0; i < budget; i++ {
			if y := obj(grid[perm[i]]); y < best {
				best = y
			}
		}
		return best
	}
	var boWins int
	const trials = 10
	for s := int64(0); s < trials; s++ {
		if run(s) <= randomRun(s)+1e-12 {
			boWins++
		}
	}
	if boWins < trials*6/10 {
		t.Fatalf("BO beat random search in only %d/%d trials", boWins, trials)
	}
}

func TestConvergesToGlobalMinimumWithFullBudget(t *testing.T) {
	obj := func(p []float64) float64 { return math.Abs(p[0]-0.4) + math.Abs(p[1]-0.8) }
	grid := grid2d(5)
	rng := rand.New(rand.NewSource(3))
	o, _ := New(rng, grid)
	for !o.Exhausted() {
		idx := o.Next()
		o.Observe(idx, obj(grid[idx]))
	}
	bi, by := o.Best()
	// Full sweep must find the exact grid optimum.
	want := math.Inf(1)
	for _, p := range grid {
		if y := obj(p); y < want {
			want = y
		}
	}
	if by != want {
		t.Fatalf("Best = %v at %v, want %v", by, grid[bi], want)
	}
}

func TestBestTracksMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o, _ := New(rng, [][]float64{{0}, {0.5}, {1}})
	o.Observe(0, 5)
	o.Observe(2, 1)
	o.Observe(1, 3)
	bi, by := o.Best()
	if bi != 2 || by != 1 {
		t.Fatalf("Best = %d, %v", bi, by)
	}
	if o.NumObserved() != 3 {
		t.Fatalf("NumObserved = %d", o.NumObserved())
	}
	if !o.Exhausted() {
		t.Fatal("grid should be exhausted")
	}
}

func TestDuplicateObservationIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	o, _ := New(rng, [][]float64{{0}, {1}})
	o.Observe(0, 5)
	o.Observe(0, 1) // ignored
	_, by := o.Best()
	if by != 5 {
		t.Fatalf("duplicate observation changed best to %v", by)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := New(rng, nil); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := New(rng, [][]float64{{0}, {0, 1}}); err == nil {
		t.Error("ragged grid accepted")
	}
	o, _ := New(rng, [][]float64{{0}})
	o.Observe(0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Next on exhausted grid should panic")
			}
		}()
		o.Next()
	}()
}

func TestConstantObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := grid2d(4)
	o, _ := New(rng, grid)
	for i := 0; i < 10; i++ {
		idx := o.Next()
		o.Observe(idx, 42)
	}
	_, by := o.Best()
	if by != 42 {
		t.Fatalf("constant objective best %v", by)
	}
}

func TestCholesky(t *testing.T) {
	// A = [[4,2],[2,3]] is PD; L = [[2,0],[1,sqrt(2)]].
	l, ok := cholesky([]float64{4, 2, 2, 3}, 2)
	if !ok {
		t.Fatal("PD matrix rejected")
	}
	if math.Abs(l[0]-2) > 1e-12 || math.Abs(l[2]-1) > 1e-12 || math.Abs(l[3]-math.Sqrt2) > 1e-12 {
		t.Fatalf("factor %v", l)
	}
	x := cholSolve(l, 2, []float64{8, 7})
	// Solve [[4,2],[2,3]] x = [8,7] → x = [1.25, 1.5]
	if math.Abs(x[0]-1.25) > 1e-9 || math.Abs(x[1]-1.5) > 1e-9 {
		t.Fatalf("solve %v", x)
	}
	if _, ok := cholesky([]float64{1, 2, 2, 1}, 2); ok {
		t.Fatal("indefinite matrix accepted")
	}
}
