// Package bayesopt implements Gaussian-process Bayesian optimization with
// an expected-improvement acquisition function over a discrete candidate
// grid. DeepSqueeze's hyperparameter tuner (paper §5.4, Fig. 5) uses it to
// pick the code size and expert count that minimize compressed output size.
package bayesopt

import (
	"fmt"
	"math"
	"math/rand"
)

// Optimizer minimizes a black-box function over a fixed set of candidate
// points. Coordinates should be roughly normalized (the default length
// scale assumes [0,1]-ish ranges).
type Optimizer struct {
	grid     [][]float64
	observed map[int]bool
	obsIdx   []int
	obsY     []float64

	// LengthScale is the RBF kernel length scale.
	LengthScale float64
	// Noise is the observation noise variance added to the kernel diagonal.
	Noise float64
	// Xi is the exploration margin in the EI acquisition.
	Xi float64

	rng *rand.Rand
}

// New returns an optimizer over the candidate grid.
func New(rng *rand.Rand, grid [][]float64) (*Optimizer, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("bayesopt: empty grid")
	}
	d := len(grid[0])
	for i, p := range grid {
		if len(p) != d {
			return nil, fmt.Errorf("bayesopt: point %d has %d dims, want %d", i, len(p), d)
		}
	}
	return &Optimizer{
		grid:        grid,
		observed:    make(map[int]bool),
		LengthScale: 0.3,
		Noise:       1e-4,
		Xi:          0.01,
		rng:         rng,
	}, nil
}

// Exhausted reports whether every candidate has been observed.
func (o *Optimizer) Exhausted() bool { return len(o.obsIdx) >= len(o.grid) }

// Next proposes the index of the next candidate to evaluate: random for the
// first two trials (the GP needs a prior), expected improvement afterwards.
func (o *Optimizer) Next() int {
	return o.NextBatch(1)[0]
}

// NextBatch proposes up to k distinct candidate indexes from a single
// posterior — the batch a parallel tuner evaluates concurrently before
// observing all results. While the GP lacks a prior (fewer than two
// observations) proposals are random without replacement; afterwards the
// top-k candidates by expected improvement are returned in descending EI
// order. Fewer than k indexes come back when the grid is nearly exhausted;
// the call panics only when nothing is left at all.
func (o *Optimizer) NextBatch(k int) []int {
	if o.Exhausted() {
		panic("bayesopt: NextBatch on exhausted grid")
	}
	unseen := make([]int, 0, len(o.grid))
	for i := range o.grid {
		if !o.observed[i] {
			unseen = append(unseen, i)
		}
	}
	if k > len(unseen) {
		k = len(unseen)
	}
	if len(o.obsIdx) < 2 {
		out := make([]int, 0, k)
		for len(out) < k {
			pick := o.rng.Intn(len(unseen))
			out = append(out, unseen[pick])
			unseen = append(unseen[:pick], unseen[pick+1:]...)
		}
		return out
	}
	mu, sigma := o.posterior(unseen)
	// Normalize observations so EI works on a standard scale.
	best := math.Inf(1)
	for _, y := range o.obsY {
		if y < best {
			best = y
		}
	}
	eis := make([]float64, len(unseen))
	for i := range unseen {
		eis[i] = expectedImprovement(best, mu[i], sigma[i], o.Xi)
	}
	taken := make([]bool, len(unseen))
	out := make([]int, 0, k)
	for len(out) < k {
		sel, selEI := -1, math.Inf(-1)
		for i := range unseen {
			if !taken[i] && eis[i] > selEI {
				selEI, sel = eis[i], i
			}
		}
		taken[sel] = true
		out = append(out, unseen[sel])
	}
	return out
}

// Observe records the objective value for a previously proposed candidate.
func (o *Optimizer) Observe(idx int, y float64) {
	if idx < 0 || idx >= len(o.grid) {
		panic(fmt.Sprintf("bayesopt: observe index %d", idx))
	}
	if o.observed[idx] {
		return // duplicate observations are ignored
	}
	o.observed[idx] = true
	o.obsIdx = append(o.obsIdx, idx)
	o.obsY = append(o.obsY, y)
}

// Best returns the grid index and value of the best (lowest) observation.
func (o *Optimizer) Best() (int, float64) {
	if len(o.obsIdx) == 0 {
		return -1, math.Inf(1)
	}
	bi, by := o.obsIdx[0], o.obsY[0]
	for k, idx := range o.obsIdx {
		if o.obsY[k] < by {
			bi, by = idx, o.obsY[k]
		}
	}
	return bi, by
}

// Point returns the coordinates of grid index idx.
func (o *Optimizer) Point(idx int) []float64 { return o.grid[idx] }

// NumObserved returns how many candidates have been evaluated.
func (o *Optimizer) NumObserved() int { return len(o.obsIdx) }

// posterior computes the GP posterior mean and standard deviation at the
// given candidate indexes, with observations standardized internally.
func (o *Optimizer) posterior(cands []int) (mu, sigma []float64) {
	n := len(o.obsIdx)
	// Standardize y.
	var mean float64
	for _, y := range o.obsY {
		mean += y
	}
	mean /= float64(n)
	var variance float64
	for _, y := range o.obsY {
		variance += (y - mean) * (y - mean)
	}
	variance /= float64(n)
	scale := math.Sqrt(variance)
	if scale < 1e-12 {
		scale = 1
	}
	ys := make([]float64, n)
	for i, y := range o.obsY {
		ys[i] = (y - mean) / scale
	}
	// K + noise I, Cholesky, alpha = K⁻¹ ys.
	k := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := o.kernel(o.grid[o.obsIdx[i]], o.grid[o.obsIdx[j]])
			if i == j {
				v += o.Noise
			}
			k[i*n+j], k[j*n+i] = v, v
		}
	}
	chol, ok := cholesky(k, n)
	if !ok {
		// Ill-conditioned kernel: fall back to pure exploration.
		mu = make([]float64, len(cands))
		sigma = make([]float64, len(cands))
		for i := range sigma {
			sigma[i] = 1
		}
		return mu, sigma
	}
	alpha := cholSolve(chol, n, ys)
	mu = make([]float64, len(cands))
	sigma = make([]float64, len(cands))
	kstar := make([]float64, n)
	for c, idx := range cands {
		for i := 0; i < n; i++ {
			kstar[i] = o.kernel(o.grid[idx], o.grid[o.obsIdx[i]])
		}
		var m float64
		for i := 0; i < n; i++ {
			m += kstar[i] * alpha[i]
		}
		v := cholSolve(chol, n, kstar)
		var kv float64
		for i := 0; i < n; i++ {
			kv += kstar[i] * v[i]
		}
		s2 := o.kernel(o.grid[idx], o.grid[idx]) - kv
		if s2 < 1e-12 {
			s2 = 1e-12
		}
		mu[c] = m*scale + mean
		sigma[c] = math.Sqrt(s2) * scale
	}
	return mu, sigma
}

func (o *Optimizer) kernel(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Exp(-s / (2 * o.LengthScale * o.LengthScale))
}

// expectedImprovement for minimization.
func expectedImprovement(best, mu, sigma, xi float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (best - mu - xi) / sigma
	return sigma * (z*normCDF(z) + normPDF(z))
}

func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// cholesky computes the lower-triangular Cholesky factor of the n×n matrix
// k (row-major). Returns ok=false when k is not positive definite.
func cholesky(k []float64, n int) ([]float64, bool) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := k[i*n+j]
			for p := 0; p < j; p++ {
				sum -= l[i*n+p] * l[j*n+p]
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, true
}

// cholSolve solves (L Lᵀ) x = b given the Cholesky factor L.
func cholSolve(l []float64, n int, b []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for j := 0; j < i; j++ {
			sum -= l[i*n+j] * y[j]
		}
		y[i] = sum / l[i*n+i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for j := i + 1; j < n; j++ {
			sum -= l[j*n+i] * x[j]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}
