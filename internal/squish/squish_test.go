package squish

import (
	"fmt"
	"math/rand"
	"testing"

	"deepsqueeze/internal/dataset"
)

// correlatedTable builds a table where col "state" functionally determines
// col "region" and numeric "temp" correlates with "state" — the structure
// Squish is designed to exploit.
func correlatedTable(rows int, seed int64) *dataset.Table {
	schema := dataset.NewSchema(
		dataset.Column{Name: "state", Type: dataset.Categorical},
		dataset.Column{Name: "region", Type: dataset.Categorical},
		dataset.Column{Name: "temp", Type: dataset.Numeric},
		dataset.Column{Name: "flag", Type: dataset.Categorical},
	)
	tb := dataset.NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	states := []string{"OR", "WA", "CA", "TX", "MA", "NY"}
	regions := map[string]string{"OR": "west", "WA": "west", "CA": "west", "TX": "south", "MA": "east", "NY": "east"}
	base := map[string]float64{"OR": 15, "WA": 13, "CA": 22, "TX": 30, "MA": 10, "NY": 12}
	for i := 0; i < rows; i++ {
		s := states[rng.Intn(len(states))]
		flag := "n"
		if rng.Float64() < 0.2 {
			flag = "y"
		}
		tb.AppendRow([]string{s, regions[s], flag}, []float64{base[s] + rng.NormFloat64()*2})
	}
	return tb
}

func TestRoundTripLossless(t *testing.T) {
	tb := correlatedTable(2000, 1)
	// temp is lossy at 5%; everything else must be exact.
	buf, err := Compress(tb, []float64{0, 0, 0.05, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	stats := tb.Stats()
	tol := []float64{0, 0, 0.05 * (stats[2].Max - stats[2].Min), 0}
	if err := tb.EqualWithin(got, tol); err != nil {
		t.Fatal(err)
	}
}

func TestFullyLosslessNumeric(t *testing.T) {
	schema := dataset.NewSchema(dataset.Column{Name: "n", Type: dataset.Numeric})
	tb := dataset.NewTable(schema, 100)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		tb.AppendRow(nil, []float64{float64(rng.Intn(10))})
	}
	buf, err := Compress(tb, []float64{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.EqualWithin(got, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExploitsFunctionalDependency(t *testing.T) {
	// With region ⟂ state removed, compressing (state, region) should cost
	// barely more than state alone, because region|state is deterministic.
	rows := 5000
	full := correlatedTable(rows, 3)
	bufFull, err := Compress(full, []float64{0, 0, 0.05, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Scramble region to break the dependency.
	scrambled := correlatedTable(rows, 3)
	rng := rand.New(rand.NewSource(4))
	regions := []string{"west", "south", "east", "north", "central", "mid"}
	for i := 0; i < rows; i++ {
		scrambled.Str[1][i] = regions[rng.Intn(len(regions))]
	}
	bufScrambled, err := Compress(scrambled, []float64{0, 0, 0.05, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(bufFull) >= len(bufScrambled) {
		t.Fatalf("dependency not exploited: correlated %d bytes ≥ scrambled %d bytes",
			len(bufFull), len(bufScrambled))
	}
}

func TestHighCardinalityFallback(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Column{Name: "id", Type: dataset.Categorical},
		dataset.Column{Name: "v", Type: dataset.Numeric},
	)
	tb := dataset.NewTable(schema, 200)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		tb.AppendRow([]string{fmt.Sprintf("unique-%d", i)}, []float64{rng.Float64()})
	}
	buf, err := Compress(tb, []float64{0, 0.1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	stats := tb.Stats()
	if err := tb.EqualWithin(got, []float64{0, 0.1 * (stats[1].Max - stats[1].Min)}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTable(t *testing.T) {
	schema := dataset.NewSchema(dataset.Column{Name: "c", Type: dataset.Categorical})
	tb := dataset.NewTable(schema, 0)
	buf, err := Compress(tb, []float64{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatalf("rows = %d", got.NumRows())
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	tb := correlatedTable(100, 6)
	buf, err := Compress(tb, []float64{0, 0, 0.1, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string][]byte{
		"empty":     {},
		"magic":     append([]byte("XXXX"), buf[4:]...),
		"version":   append(append([]byte{}, buf[:4]...), append([]byte{9}, buf[5:]...)...),
		"truncated": buf[:len(buf)-3],
		"trailing":  append(append([]byte{}, buf...), 1, 2, 3),
	} {
		if _, err := Decompress(c); err == nil {
			t.Errorf("%s: corrupt archive accepted", name)
		}
	}
}

func TestMutualInformation(t *testing.T) {
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	c := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for i := range a {
		a[i] = rng.Intn(4)
		b[i] = a[i] // perfectly dependent
		c[i] = rng.Intn(4)
	}
	sample := sampleIndexes(n, n, 1)
	dep := mutualInformation(a, b, 4, 4, sample)
	ind := mutualInformation(a, c, 4, 4, sample)
	if dep < 1.0 {
		t.Fatalf("MI of identical columns = %v, want ≈ln(4)=1.386", dep)
	}
	if ind > 0.05 {
		t.Fatalf("MI of independent columns = %v, want ≈0", ind)
	}
}

func TestLearnStructurePicksDependentParent(t *testing.T) {
	tb := correlatedTable(3000, 8)
	plan, err := Compress(tb, []float64{0, 0, 0.1, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = plan
	// Direct structural check: region's parent set should include state.
	codes := map[int][]int{}
	alpha := map[int]int{}
	stateDict := map[string]int{}
	regionDict := map[string]int{}
	stateCodes := make([]int, tb.NumRows())
	regionCodes := make([]int, tb.NumRows())
	for i := 0; i < tb.NumRows(); i++ {
		s := tb.Str[0][i]
		if _, ok := stateDict[s]; !ok {
			stateDict[s] = len(stateDict)
		}
		stateCodes[i] = stateDict[s]
		rg := tb.Str[1][i]
		if _, ok := regionDict[rg]; !ok {
			regionDict[rg] = len(regionDict)
		}
		regionCodes[i] = regionDict[rg]
	}
	codes[0], codes[1] = stateCodes, regionCodes
	alpha[0], alpha[1] = len(stateDict), len(regionDict)
	parents := learnStructure(tb.NumRows(), []int{0, 1}, codes, alpha, DefaultOptions())
	if len(parents[1]) != 1 || parents[1][0] != 0 {
		t.Fatalf("region parents = %v, want [state]", parents[1])
	}
	if len(parents[0]) != 0 {
		t.Fatalf("state (first column) has parents %v", parents[0])
	}
}

func BenchmarkCompress(b *testing.B) {
	tb := correlatedTable(5000, 9)
	thr := []float64{0, 0, 0.1, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(tb, thr, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
