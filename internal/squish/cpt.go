package squish

import (
	"encoding/binary"
	"fmt"
	"sort"

	"deepsqueeze/internal/rangecoder"
)

// Conditional probability tables. The published Squish learns its Bayesian
// network and parameters up front, ships the model inside the compressed
// output, and arithmetic-codes against those *static* probabilities — it
// does not adapt during coding. We reproduce that: per column, a quantized
// marginal table plus quantized tables for the most frequent parent
// configurations (the long tail of rare configurations falls back to the
// marginal, bounding model size the way Squish's model-cost term does).

// maxStoredConfigs bounds the per-column number of stored parent
// configurations.
const maxStoredConfigs = 4096

// cpt is one quantized frequency table over a column's alphabet.
// Frequencies are 1..255 (never zero: every symbol stays encodable).
type cpt struct {
	freq []uint16
	cum  []uint16 // cumulative, len = len(freq)+1
	tot  uint32
}

// newCPT quantizes raw counts into a table. Every symbol gets frequency ≥ 1
// (Laplace smoothing); the total is kept within the range coder's budget.
func newCPT(counts []int, alphabet int) *cpt {
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// Scale the largest count to 255; keep totals within the coder limit.
	limit := 255
	if alphabet*256 > int(rangecoder.MaxTotal) {
		limit = int(rangecoder.MaxTotal)/alphabet - 1
		if limit < 1 {
			limit = 1
		}
	}
	t := &cpt{freq: make([]uint16, alphabet)}
	for s := 0; s < alphabet; s++ {
		f := 1
		if s < len(counts) && counts[s] > 0 {
			f = 1 + counts[s]*(limit-1)/maxCount
		}
		t.freq[s] = uint16(f)
	}
	t.finish()
	return t
}

func (t *cpt) finish() {
	t.cum = make([]uint16, len(t.freq)+1)
	var acc uint32
	for s, f := range t.freq {
		t.cum[s] = uint16(acc)
		acc += uint32(f)
	}
	t.cum[len(t.freq)] = uint16(acc)
	t.tot = acc
}

// encode writes symbol s with the table's static statistics.
func (t *cpt) encode(e *rangecoder.Encoder, s int) {
	e.Encode(uint32(t.cum[s]), uint32(t.freq[s]), t.tot)
}

// decode reads one symbol.
func (t *cpt) decode(d *rangecoder.Decoder) int {
	target := d.DecodeFreq(t.tot)
	// Binary search the cumulative table.
	s := sort.Search(len(t.freq), func(i int) bool { return uint32(t.cum[i+1]) > target })
	d.Update(uint32(t.cum[s]), uint32(t.freq[s]), t.tot)
	return s
}

// appendBinary serializes the frequency table (freq-1 fits a byte when the
// limit is 255; larger alphabets shrink the limit accordingly, so a byte
// always suffices).
func (t *cpt) appendBinary(dst []byte) []byte {
	for _, f := range t.freq {
		if f < 1 || f > 256 {
			panic(fmt.Sprintf("squish: cpt frequency %d out of byte range", f))
		}
		dst = append(dst, byte(f-1))
	}
	return dst
}

// decodeCPT parses a table for the given alphabet and returns bytes used.
func decodeCPT(buf []byte, alphabet int) (*cpt, int, error) {
	if len(buf) < alphabet {
		return nil, 0, fmt.Errorf("%w: truncated CPT", ErrCorrupt)
	}
	t := &cpt{freq: make([]uint16, alphabet)}
	for s := 0; s < alphabet; s++ {
		t.freq[s] = uint16(buf[s]) + 1
	}
	t.finish()
	return t, alphabet, nil
}

// colModel is one column's stored model: marginal table plus tables for
// frequent parent configurations (keyed by mixed-radix parent code index).
type colModel struct {
	marginal *cpt
	byConfig map[uint64]*cpt
}

// table returns the CPT for a parent configuration.
func (m *colModel) table(key uint64) *cpt {
	if t, ok := m.byConfig[key]; ok {
		return t
	}
	return m.marginal
}

// configKey combines parent codes into a mixed-radix index. Both sides
// compute it from already-(de)coded parent values of the same row.
func configKey(parents []int, alpha map[int]int, codes map[int][]int, r int) uint64 {
	var key uint64
	for _, p := range parents {
		key = key*uint64(alpha[p]) + uint64(codes[p][r])
	}
	return key
}

// learnCPTs counts symbol frequencies per parent configuration over the
// whole table and keeps the most frequent configurations.
func learnCPTs(rows int, cols []int, parents map[int][]int, alpha map[int]int, codes map[int][]int) map[int]*colModel {
	models := make(map[int]*colModel, len(cols))
	for _, c := range cols {
		a := alpha[c]
		marg := make([]int, a)
		confCounts := make(map[uint64][]int)
		confTotal := make(map[uint64]int)
		for r := 0; r < rows; r++ {
			v := codes[c][r]
			marg[v]++
			if len(parents[c]) == 0 {
				continue
			}
			key := configKey(parents[c], alpha, codes, r)
			cc, ok := confCounts[key]
			if !ok {
				cc = make([]int, a)
				confCounts[key] = cc
			}
			cc[v]++
			confTotal[key]++
		}
		m := &colModel{marginal: newCPT(marg, a), byConfig: make(map[uint64]*cpt)}
		if len(confCounts) > 0 {
			keys := make([]uint64, 0, len(confCounts))
			for k := range confCounts {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if confTotal[keys[i]] != confTotal[keys[j]] {
					return confTotal[keys[i]] > confTotal[keys[j]]
				}
				return keys[i] < keys[j]
			})
			if len(keys) > maxStoredConfigs {
				keys = keys[:maxStoredConfigs]
			}
			for _, k := range keys {
				m.byConfig[k] = newCPT(confCounts[k], a)
			}
		}
		models[c] = m
	}
	return models
}

// appendModels serializes all column models in cols order.
func appendModels(dst []byte, cols []int, models map[int]*colModel) []byte {
	for _, c := range cols {
		m := models[c]
		dst = m.marginal.appendBinary(dst)
		keys := make([]uint64, 0, len(m.byConfig))
		for k := range m.byConfig {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		prev := uint64(0)
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, k-prev) // delta-coded keys
			prev = k
			dst = m.byConfig[k].appendBinary(dst)
		}
	}
	return dst
}

// decodeModels parses the model block.
func decodeModels(buf []byte, cols []int, alpha map[int]int) (map[int]*colModel, int, error) {
	models := make(map[int]*colModel, len(cols))
	pos := 0
	for _, c := range cols {
		a := alpha[c]
		if a < 0 {
			return nil, 0, fmt.Errorf("%w: column %d alphabet %d", ErrCorrupt, c, a)
		}
		// a == 0 only occurs for empty tables, whose model block is empty.
		marg, used, err := decodeCPT(buf[pos:], a)
		if err != nil {
			return nil, 0, err
		}
		pos += used
		nConf, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 || nConf > maxStoredConfigs {
			return nil, 0, fmt.Errorf("%w: CPT config count", ErrCorrupt)
		}
		pos += sz
		m := &colModel{marginal: marg, byConfig: make(map[uint64]*cpt, nConf)}
		key := uint64(0)
		for i := uint64(0); i < nConf; i++ {
			d, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("%w: CPT config key", ErrCorrupt)
			}
			pos += sz
			key += d
			t, used, err := decodeCPT(buf[pos:], a)
			if err != nil {
				return nil, 0, err
			}
			pos += used
			m.byConfig[key] = t
		}
		models[c] = m
	}
	return models, pos, nil
}
