// Package squish implements the Squish semantic compressor (Gao &
// Parameswaran, SIGKDD 2016), the state-of-the-art baseline the paper
// compares against. Squish couples a Bayesian network over columns with
// arithmetic coding: each column is entropy-coded conditioned on its
// parents, so pairwise/few-column dependencies compress to almost nothing,
// while relationships spanning many columns (DeepSqueeze's strength) are
// invisible to it.
//
// Our implementation learns the network structure greedily by mutual
// information (up to MaxParents parents per column, chosen among earlier
// columns so decoding order is well-defined), learns quantized conditional
// probability tables, ships the model inside the compressed output exactly
// as the published system does, and codes statically against those tables
// with a range coder (the practical arithmetic-coding variant). Numeric
// columns honor the same error-threshold quantization contract as
// DeepSqueeze.
package squish

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"deepsqueeze/internal/colfile"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/preprocess"
	"deepsqueeze/internal/rangecoder"
)

// ErrCorrupt is returned when a compressed buffer fails validation.
var ErrCorrupt = errors.New("squish: corrupt archive")

var magic = [4]byte{'S', 'Q', 'S', 'H'}

const version = 1

// maxAlphabet bounds per-column alphabets so cumulative frequencies fit the
// range coder.
const maxAlphabet = 16384

// Options controls structure learning.
type Options struct {
	// MaxParents bounds the number of parents per column (Squish uses
	// small in-degrees; 2 is the sweet spot).
	MaxParents int
	// SampleRows bounds the rows used for mutual-information estimation.
	SampleRows int
	// MinMI is the minimum mutual information (nats) a parent must provide.
	MinMI float64
	// MaxParentConfigs bounds the product of parent cardinalities to keep
	// the number of adaptive contexts manageable.
	MaxParentConfigs int
	// Seed drives sampling.
	Seed int64
}

// DefaultOptions returns production defaults.
func DefaultOptions() Options {
	return Options{
		MaxParents:       2,
		SampleRows:       20000,
		MinMI:            0.01,
		MaxParentConfigs: 1 << 16,
		Seed:             1,
	}
}

func (o *Options) defaults() {
	d := DefaultOptions()
	if o.MaxParents <= 0 {
		o.MaxParents = d.MaxParents
	}
	if o.SampleRows <= 0 {
		o.SampleRows = d.SampleRows
	}
	if o.MinMI <= 0 {
		o.MinMI = d.MinMI
	}
	if o.MaxParentConfigs <= 0 {
		o.MaxParentConfigs = d.MaxParentConfigs
	}
}

// preprocOptions adapts the shared preprocessing to Squish's needs: the
// arithmetic coder's alphabet must cover every value (no skew escapes), and
// alphabets must fit the range coder's frequency budget.
func preprocOptions() preprocess.Options {
	return preprocess.Options{
		MaxModelCardinality:   maxAlphabet,
		SkewCoverage:          1, // disabled
		FallbackMaxDistinct:   maxAlphabet,
		FallbackDistinctRatio: 0.5,
		MaxValueDictLen:       4096,
	}
}

// Compress compresses t with per-column error thresholds (same contract as
// DeepSqueeze: threshold is a fraction of the column range; 0 = lossless).
func Compress(t *dataset.Table, thresholds []float64, opts Options) ([]byte, error) {
	opts.defaults()
	plan, err := preprocess.Fit(t, preprocOptions(), thresholds)
	if err != nil {
		return nil, err
	}
	cols := plan.ModelColumnIndexes()
	codes := make(map[int][]int, len(cols))
	alpha := make(map[int]int, len(cols))
	for _, c := range cols {
		cc, err := plan.Encode(t, c)
		if err != nil {
			return nil, err
		}
		codes[c] = cc
		alpha[c] = alphabetSize(&plan.Cols[c])
	}
	parents := learnStructure(t.NumRows(), cols, codes, alpha, opts)
	models := learnCPTs(t.NumRows(), cols, parents, alpha, codes)

	var out bytes.Buffer
	out.Write(magic[:])
	out.WriteByte(version)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(t.NumRows()))
	hdr = plan.AppendBinary(hdr)
	// Structure: per model column, parent count + parent schema indexes.
	hdr = binary.AppendUvarint(hdr, uint64(len(cols)))
	for _, c := range cols {
		hdr = binary.AppendUvarint(hdr, uint64(c))
		hdr = binary.AppendUvarint(hdr, uint64(len(parents[c])))
		for _, p := range parents[c] {
			hdr = binary.AppendUvarint(hdr, uint64(p))
		}
	}
	out.Write(hdr)

	// The learned model ships inside the output, as published Squish does;
	// its (deflated) size is part of the compression ratio.
	modelBlock := colfile.Deflate(appendModels(nil, cols, models))
	var mlp []byte
	mlp = binary.AppendUvarint(mlp, uint64(len(modelBlock)))
	out.Write(mlp)
	out.Write(modelBlock)

	// Fallback columns are stored through the columnar format, as Squish
	// does for unmodelable data.
	for i, cp := range plan.Cols {
		var chunk []byte
		switch cp.Kind {
		case preprocess.KindFallbackCat:
			chunk = colfile.PackStrings(t.Str[i])
		case preprocess.KindFallbackNum:
			chunk = colfile.PackFloats(t.Num[i])
		default:
			continue
		}
		var lp []byte
		lp = binary.AppendUvarint(lp, uint64(len(chunk)))
		out.Write(lp)
		out.Write(chunk)
	}

	// Arithmetic-coded body: row-major, each column coded against the
	// stored static table of its parents' configuration in the same row.
	enc := rangecoder.NewEncoder()
	for r := 0; r < t.NumRows(); r++ {
		for _, c := range cols {
			tab := models[c].marginal
			if len(parents[c]) > 0 {
				tab = models[c].table(configKey(parents[c], alpha, codes, r))
			}
			tab.encode(enc, codes[c][r])
		}
	}
	body := enc.Bytes()
	var lp []byte
	lp = binary.AppendUvarint(lp, uint64(len(body)))
	out.Write(lp)
	out.Write(body)
	return out.Bytes(), nil
}

// Decompress inverts Compress.
func Decompress(buf []byte) (*dataset.Table, error) {
	if len(buf) < 5 || !bytes.Equal(buf[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if buf[4] != version {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, buf[4])
	}
	pos := 5
	rows64, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: missing row count", ErrCorrupt)
	}
	pos += sz
	rows := int(rows64)
	plan, used, err := preprocess.DecodePlan(buf[pos:])
	if err != nil {
		return nil, err
	}
	pos += used
	nmc, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || nmc > uint64(len(plan.Cols)) {
		return nil, fmt.Errorf("%w: model column count", ErrCorrupt)
	}
	pos += sz
	cols := make([]int, nmc)
	parents := make(map[int][]int, nmc)
	for i := range cols {
		c64, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 || c64 >= uint64(len(plan.Cols)) {
			return nil, fmt.Errorf("%w: model column index", ErrCorrupt)
		}
		pos += sz
		cols[i] = int(c64)
		np, sz := binary.Uvarint(buf[pos:])
		if sz <= 0 || np > 16 {
			return nil, fmt.Errorf("%w: parent count", ErrCorrupt)
		}
		pos += sz
		ps := make([]int, np)
		for j := range ps {
			p64, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 || p64 >= uint64(len(plan.Cols)) {
				return nil, fmt.Errorf("%w: parent index", ErrCorrupt)
			}
			pos += sz
			ps[j] = int(p64)
		}
		parents[cols[i]] = ps
	}

	alpha := make(map[int]int, len(cols))
	for _, c := range cols {
		alpha[c] = alphabetSize(&plan.Cols[c])
		if alpha[c] <= 0 && rows > 0 {
			return nil, fmt.Errorf("%w: column %d alphabet %d", ErrCorrupt, c, alpha[c])
		}
	}
	ml, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || uint64(len(buf)-pos-sz) < ml {
		return nil, fmt.Errorf("%w: truncated model block", ErrCorrupt)
	}
	pos += sz
	modelBlock, err := colfile.Inflate(buf[pos : pos+int(ml)])
	if err != nil {
		return nil, err
	}
	pos += int(ml)
	models, used, err := decodeModels(modelBlock, cols, alpha)
	if err != nil {
		return nil, err
	}
	if used != len(modelBlock) {
		return nil, fmt.Errorf("%w: %d trailing model bytes", ErrCorrupt, len(modelBlock)-used)
	}

	out := dataset.NewTable(plan.Schema, rows)
	for i, cp := range plan.Cols {
		switch cp.Kind {
		case preprocess.KindFallbackCat, preprocess.KindFallbackNum:
			l, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 || uint64(len(buf)-pos-sz) < l {
				return nil, fmt.Errorf("%w: truncated fallback chunk", ErrCorrupt)
			}
			pos += sz
			chunk := buf[pos : pos+int(l)]
			pos += int(l)
			if cp.Kind == preprocess.KindFallbackCat {
				vals, err := colfile.UnpackStrings(chunk)
				if err != nil {
					return nil, err
				}
				if len(vals) != rows {
					return nil, fmt.Errorf("%w: fallback rows %d, want %d", ErrCorrupt, len(vals), rows)
				}
				out.Str[i] = vals
			} else {
				vals, err := colfile.UnpackFloats(chunk)
				if err != nil {
					return nil, err
				}
				if len(vals) != rows {
					return nil, fmt.Errorf("%w: fallback rows %d, want %d", ErrCorrupt, len(vals), rows)
				}
				out.Num[i] = vals
			}
		}
	}

	bl, sz := binary.Uvarint(buf[pos:])
	if sz <= 0 || uint64(len(buf)-pos-sz) < bl {
		return nil, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	pos += sz
	body := buf[pos : pos+int(bl)]
	if len(buf)-pos-int(bl) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}

	dec := rangecoder.NewDecoder(body)
	codes := make(map[int][]int, len(cols))
	for _, c := range cols {
		codes[c] = make([]int, rows)
	}
	for r := 0; r < rows; r++ {
		for _, c := range cols {
			tab := models[c].marginal
			if len(parents[c]) > 0 {
				tab = models[c].table(configKey(parents[c], alpha, codes, r))
			}
			codes[c][r] = tab.decode(dec)
		}
	}
	if dec.Overrun() {
		return nil, fmt.Errorf("%w: arithmetic stream overrun", ErrCorrupt)
	}
	for _, c := range cols {
		if err := plan.DecodeColumn(out, c, codes[c]); err != nil {
			return nil, err
		}
	}
	out.SetNumRows(rows)
	return out, nil
}

// alphabetSize returns the symbol count for a model column.
func alphabetSize(cp *preprocess.ColPlan) int {
	switch cp.Kind {
	case preprocess.KindCatModel, preprocess.KindBinary:
		return cp.Dict.Len()
	case preprocess.KindNumQuant:
		return cp.Quant.NumBucket
	case preprocess.KindNumDict:
		return cp.VDict.Len()
	default:
		return 0
	}
}

// learnStructure greedily selects up to MaxParents earlier columns per
// column by mutual information on a row sample.
func learnStructure(rows int, cols []int, codes map[int][]int, alpha map[int]int, opts Options) map[int][]int {
	parents := make(map[int][]int, len(cols))
	sample := sampleIndexes(rows, opts.SampleRows, opts.Seed)
	for i, c := range cols {
		var chosen []int
		configs := 1
		type cand struct {
			col int
			mi  float64
		}
		var cands []cand
		for j := 0; j < i; j++ {
			p := cols[j]
			mi := mutualInformation(codes[c], codes[p], alpha[c], alpha[p], sample)
			if mi >= opts.MinMI {
				cands = append(cands, cand{p, mi})
			}
		}
		// Highest MI first; stable order for determinism.
		for a := 0; a < len(cands); a++ {
			for b := a + 1; b < len(cands); b++ {
				if cands[b].mi > cands[a].mi {
					cands[a], cands[b] = cands[b], cands[a]
				}
			}
		}
		for _, cd := range cands {
			if len(chosen) >= opts.MaxParents {
				break
			}
			if configs*alpha[cd.col] > opts.MaxParentConfigs {
				continue
			}
			chosen = append(chosen, cd.col)
			configs *= alpha[cd.col]
		}
		parents[c] = chosen
	}
	return parents
}

// sampleIndexes returns up to limit row indexes (all rows when they fit).
func sampleIndexes(rows, limit int, seed int64) []int {
	if rows <= limit {
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, limit)
	for i := range idx {
		idx[i] = rng.Intn(rows)
	}
	return idx
}

// mutualInformation estimates MI (nats) between two code columns on the
// sampled rows.
func mutualInformation(a, b []int, alphaA, alphaB int, sample []int) float64 {
	if alphaA <= 1 || alphaB <= 1 {
		return 0
	}
	joint := make(map[uint64]int)
	ca := make(map[int]int)
	cb := make(map[int]int)
	for _, r := range sample {
		x, y := a[r], b[r]
		joint[uint64(x)<<32|uint64(uint32(y))]++
		ca[x]++
		cb[y]++
	}
	n := float64(len(sample))
	var mi float64
	for k, c := range joint {
		x, y := int(k>>32), int(uint32(k))
		pxy := float64(c) / n
		px := float64(ca[x]) / n
		py := float64(cb[y]) / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}
