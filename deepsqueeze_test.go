package deepsqueeze

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func demoTable(rows int, seed int64) *Table {
	schema := NewSchema(
		Column{Name: "region", Type: Categorical},
		Column{Name: "load", Type: Numeric},
		Column{Name: "temp", Type: Numeric},
	)
	t := NewTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"east", "west", "south"}
	for i := 0; i < rows; i++ {
		z := rng.Float64()
		t.AppendRow([]string{regions[int(z*2.999)]}, []float64{z * 100, 20 + z*60})
	}
	return t
}

func TestPublicAPIRoundTrip(t *testing.T) {
	tb := demoTable(800, 1)
	opts := DefaultOptions()
	opts.Train.Epochs = 8
	thr := UniformThresholds(tb, 0.05)
	res, err := Compress(tb, thr, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	stats := tb.Stats()
	tol := []float64{0, 0.05 * (stats[1].Max - stats[1].Min), 0.05 * (stats[2].Max - stats[2].Min)}
	if err := tb.EqualWithin(got, tol); err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total != int64(len(res.Archive)) {
		t.Fatal("breakdown total mismatch")
	}
}

func TestUniformThresholds(t *testing.T) {
	tb := demoTable(5, 2)
	thr := UniformThresholds(tb, 0.1)
	want := []float64{0, 0.1, 0.1}
	for i := range want {
		if thr[i] != want[i] {
			t.Fatalf("thresholds = %v", thr)
		}
	}
}

func TestStreamingHelpers(t *testing.T) {
	tb := demoTable(300, 3)
	opts := DefaultOptions()
	opts.Train.Epochs = 5
	var buf bytes.Buffer
	if _, err := CompressTo(&buf, tb, UniformThresholds(tb, 0.1), opts); err != nil {
		t.Fatal(err)
	}
	got, err := DecompressFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tb.NumRows() {
		t.Fatalf("rows %d != %d", got.NumRows(), tb.NumRows())
	}
}

func TestReadCSVThroughPublicAPI(t *testing.T) {
	csv := "region,load,temp\neast,10,21.5\nwest,90,77\n"
	schema := NewSchema(
		Column{Name: "region", Type: Categorical},
		Column{Name: "load", Type: Numeric},
		Column{Name: "temp", Type: Numeric},
	)
	tb, err := ReadCSV(strings.NewReader(csv), schema)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Str[0][1] != "west" || tb.Num[2][0] != 21.5 {
		t.Fatalf("parsed table wrong: %+v", tb)
	}
}

func TestTunePublicAPI(t *testing.T) {
	tb := demoTable(500, 4)
	topts := DefaultTuneOptions()
	topts.Samples = []int{200}
	topts.Codes = []int{1, 2}
	topts.Experts = []int{1}
	topts.Budget = 2
	topts.Base.Train.Epochs = 5
	res, err := Tune(tb, UniformThresholds(tb, 0.1), topts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CodeSize == 0 {
		t.Fatal("tuner returned zero code size")
	}
}

func TestQueryPublicAPI(t *testing.T) {
	tb := demoTable(600, 5)
	opts := DefaultOptions()
	opts.Train.Epochs = 4
	opts.RowGroupSize = 150
	res, err := Compress(tb, UniformThresholds(tb, 0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(res.Archive)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePredicate("region = 'east' AND load < 50")
	if err != nil {
		t.Fatal(err)
	}
	qr, err := Query(res.Archive, QueryOptions{Where: p})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for r := 0; r < full.NumRows(); r++ {
		if full.Str[0][r] == "east" && full.Num[1][r] < 50 {
			want++
		}
	}
	if qr.Matched != want {
		t.Fatalf("Query matched %d rows, decompress-then-filter says %d", qr.Matched, want)
	}
	if qr.Table.NumRows() != want {
		t.Fatalf("Query returned %d rows, want %d", qr.Table.NumRows(), want)
	}

	// The constructor-built predicate agrees with the parsed one.
	qc, err := Query(res.Archive, QueryOptions{
		Where: PredAnd(Eq("region", "east"), Lt("load", 50)),
		Aggs:  []AggOp{{Kind: AggCount}, {Kind: AggMax, Col: "temp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if qc.Aggregates[0].Value != float64(want) {
		t.Fatalf("aggregate count %g, want %d", qc.Aggregates[0].Value, want)
	}
}
