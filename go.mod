module deepsqueeze

go 1.22
