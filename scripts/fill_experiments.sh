#!/bin/sh
# Splices recorded results from results/ into EXPERIMENTS.md placeholders.
# Idempotent: rerun after regenerating any result file.
set -e
cd "$(dirname "$0")/.."
python3 - <<'EOF'
import glob, re

md = open('EXPERIMENTS.md').read()

def block(path):
    try:
        body = open(path).read().strip()
    except FileNotFoundError:
        return None
    return "```\n" + body + "\n```"

def fill(marker, path, note=""):
    global md
    b = block(path)
    if b is None:
        return
    repl = (note + "\n\n" if note else "") + b
    md = md.replace(f"<!-- {marker} -->", repl)

fill("FIG6_RESULTS", "results/fig6-scale1.txt")
fill("TABLE2_RESULTS", "results/table2-scale0.5.txt",
     "Measured (`dsbench -exp table2 -scale 0.5`):")
fill("FIG7_RESULTS", "results/fig7-scale0.5.txt",
     "Measured (`dsbench -exp fig7 -scale 0.5`):")
fill("FIG8_RESULTS", "results/fig8-scale1.txt",
     "Measured (`dsbench -exp fig8 -scale 1`):")
fill("FIG9_RESULTS", "results/fig9-scale0.3.txt",
     "Measured (`dsbench -exp fig9 -scale 0.3`):")
fill("FIG10_RESULTS", "results/fig10-scale1.txt",
     "Measured (`dsbench -exp fig10 -scale 1`):")

abl = []
for p in ("results/ablation-truncation-scale1.txt", "results/ablation-mapping-scale1.txt"):
    b = block(p)
    if b:
        abl.append(b)
if abl:
    md = md.replace("<!-- ABLATION_RESULTS -->", "\n\n".join(abl))

open('EXPERIMENTS.md','w').write(md)
print("filled:", [m for m in ["FIG6","TABLE2","FIG7","FIG8","FIG9","FIG10","ABLATION"] if f"<!-- {m}_RESULTS -->" not in md])
EOF
