#!/bin/sh
# Regenerates every paper table/figure and stores the reports under
# results/. Scales are trimmed so the whole suite finishes on a small
# machine; pass a scale as $1 to override the default.
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
SMALL="${2:-0.15}"
mkdir -p results
go build -o /tmp/dsbench ./cmd/dsbench

run() {
  exp="$1"; scale="$2"
  echo ">>> $exp (scale $scale)" >&2
  /tmp/dsbench -exp "$exp" -scale "$scale" -seed 1 -csv results | tee "results/$exp.txt"
}

run table1 "$SCALE"
run fig6a "$SCALE"
run fig6 "$SCALE"
run fig7 "$SCALE"
run fig8 "$SCALE"
run fig10 "$SCALE"
run ablation-truncation "$SCALE"
run ablation-mapping "$SCALE"
run table2 "$SMALL"
run fig9 "$SMALL"
echo "all experiments done" >&2
