#!/usr/bin/env bash
# Tier-1 gate: vet, formatting, build, and the full test suite under the
# race detector (the pipeline worker pool introduces real concurrency, so
# -race is mandatory, not optional). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
# Short coverage-guided runs of the decode-path fuzzers: any panic or
# unclassified error on arbitrary bytes fails the gate.
go test -run='^$' -fuzz=FuzzDecompress -fuzztime=10s ./internal/core
go test -run='^$' -fuzz=FuzzSectionReader -fuzztime=5s ./internal/core

echo "all checks passed"
