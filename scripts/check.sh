#!/usr/bin/env bash
# Tier-1 gate: vet, formatting, build, and the full test suite under the
# race detector (the pipeline worker pool introduces real concurrency, so
# -race is mandatory, not optional). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== cross-version golden gate =="
# The committed v1 and v2 fixtures must decode byte-identically: a failure
# here means the reader broke the on-disk format contract.
go test -run='^TestGoldenArchives$' -count=1 ./internal/core

echo "== bounded-memory smoke =="
# Streaming compress + decompress of a CSV under a GOMEMLIMIT far below the
# file size: only the row-group pipeline (O(group) memory) can survive this.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/dsqz" ./cmd/dsqz
awk 'BEGIN {
    print "city,temp,load"
    for (i = 0; i < 400000; i++)
        printf "c%d,%.6f,%.6f\n", i % 7, 20 + (i % 1000) / 37.0, (i * 31 % 9973) / 11.0
}' > "$smokedir/big.csv"
csv_bytes=$(wc -c < "$smokedir/big.csv")
# ~9.5 MB of CSV with the heap capped far below it. An in-memory path would
# thrash the GC into the ground; the streaming path holds one row group.
GOMEMLIMIT=8MiB "$smokedir/dsqz" compress -in "$smokedir/big.csv" \
    -out "$smokedir/big.dsqz" -schema "city:cat,temp:num,load:num" \
    -error 0.05 -rowgroup 4096
GOMEMLIMIT=8MiB "$smokedir/dsqz" decompress -in "$smokedir/big.dsqz" \
    -out "$smokedir/back.csv"
back_rows=$(wc -l < "$smokedir/back.csv")
if [ "$back_rows" -ne 400001 ]; then
    echo "bounded-memory smoke: round trip returned $back_rows lines, want 400001" >&2
    exit 1
fi
echo "bounded-memory smoke ok ($csv_bytes CSV bytes under GOMEMLIMIT=8MiB)"

echo "== benchmark smoke =="
# One iteration of the training benchmarks: catches kernels or the trainer
# panicking under benchmark shapes without paying for a real measurement.
go test -run='^$' -bench='TrainBatch|TrainEpoch' -benchtime=1x ./internal/nn
go test -run='^$' -bench='Into' -benchtime=1x ./internal/mat

echo "== float32 kernel gate =="
# The f32 kernel family's property tests against the f64 twins, the
# asm-vs-portable bit-identity pin, decoder parity, and the archive-level
# determinism/round-trip contracts. All run under -race above too; this
# names them so a failure is attributable at a glance.
go test -run='Kernels32|MulTRow32|Arena32|UlpDiff32' -count=1 ./internal/mat
go test -run='Decoder32|Predictor32|Float32' -count=1 ./internal/nn
go test -run='Float32' -count=1 ./internal/core ./internal/query ./internal/serve

echo "== stream codec gate =="
# The codec layer's contracts: legacy tag bytes and committed goldens decode
# unchanged (entropy_v2 pins the range frame format), corrupt frames fail
# with ErrCorrupt instead of panicking, best-of never loses to DEFLATE, and
# archives stay byte-identical across parallelism levels.
go test -count=1 ./internal/codec ./internal/rangecoder
go test -run='TestRoundTripEveryCodec|TestCodecDeterministicAcrossParallelism|TestAutoUsesRangeCodecsOnSkewedData|TestStreamStatsConsistency' -count=1 ./internal/core

echo "== block cache gate =="
# The decoded-block cache's contracts: cached results byte-identical to the
# uncached path, budget respected under eviction pressure, singleflight
# dedupe of concurrent misses, and the randomized mixed-workload test with
# concurrent file-swap invalidation. All run under -race above too; this
# names them so a failure is attributable at a glance.
go test -run='TestBlockCache|TestCachedEquivalence|TestCachedKernelChunking' -count=1 ./internal/serve ./internal/query

echo "== warm-path allocation gate =="
# testing.AllocsPerRun ceiling on the warm cached aggregate query. Runs
# without -race on purpose: race instrumentation adds allocations, so the
# test skips itself under the instrumented suite above and only measures
# here.
go test -run='^TestWarmCachedQueryAllocs$' -count=1 ./internal/serve

echo "== residual-digit gate =="
# The resbit subsystem's contracts: digit layouts cover their alphabets at
# minimal head cost, residual archives round-trip exactly and byte-identically
# across parallelism levels, corrupt digit streams fail with ErrCorrupt rather
# than panicking, zone maps over residual columns stay sound value-by-value,
# and the resbit_v2 golden pins the on-disk digit layout. The ratio bench
# smoke below additionally enforces the >= 10% archive shrink over the
# colfile-fallback baseline on the high-cardinality clickstream fixture.
go test -count=1 ./internal/resbit
go test -run='TestResidual|TestGoldenArchives/resbit_v2' -count=1 ./internal/core

echo "== query equivalence gate =="
# Predicate-pushdown results must be byte-identical to decompress-then-
# filter for randomized predicates at parallelism 1, 4, and NumCPU.
go test -run='^TestQueryEquivalence$' -count=1 ./internal/query

echo "== query bench smoke =="
# One quick pass of the selectivity sweep: exercises zone-map pruning,
# group-masked decode, and the row-for-row verification inside the bench.
go build -o "$smokedir/dsbench" ./cmd/dsbench
(cd "$smokedir" && ./dsbench -exp query -quick > /dev/null)

echo "== serve bench smoke =="
# One quick pass of the serving sweep: exercises the handle cache, the
# shared-pool admission path, and warm-vs-cold verification inside the bench.
(cd "$smokedir" && ./dsbench -exp serve -quick > /dev/null)

echo "== f32 bench smoke =="
# One quick pass of the float32-vs-float64 comparison: compresses the same
# table under both plans and cross-checks every decoded cell between them
# before reporting any speedup.
(cd "$smokedir" && ./dsbench -exp f32 -quick > /dev/null)

echo "== ratio bench smoke =="
# One quick pass of the stream-codec comparison: compresses the skewed
# categorical fixture under the DEFLATE-only baseline and best-of selection,
# enforces the >= 10% failure/code shrink bound, and verifies byte-identical
# archives at parallelism 1, 4, and NumCPU. The same pass runs the residual
# gate: the clickstream fixture's -resbit archive must be >= 10% smaller than
# its colfile-fallback baseline and exactly lossless.
(cd "$smokedir" && ./dsbench -exp ratio -quick > /dev/null)

echo "== fuzz smoke =="
# Short coverage-guided runs of the decode-path fuzzers: any panic or
# unclassified error on arbitrary bytes fails the gate.
go test -run='^$' -fuzz=FuzzDecompress -fuzztime=10s ./internal/core
go test -run='^$' -fuzz=FuzzSectionReader -fuzztime=5s ./internal/core

echo "all checks passed"
