#!/usr/bin/env bash
# Tier-1 gate: vet, formatting, build, and the full test suite under the
# race detector (the pipeline worker pool introduces real concurrency, so
# -race is mandatory, not optional). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "all checks passed"
