#!/bin/sh
# Remaining recorded experiments after fig6: micro-benchmarks and runtimes.
# Scales are chosen so each experiment completes on one core in minutes;
# EXPERIMENTS.md notes the scale per experiment.
set -e
cd "$(dirname "$0")/.."
mkdir -p results
go build -o /tmp/dsbench ./cmd/dsbench
run() {
  exp="$1"; scale="$2"; shift 2
  echo ">>> $exp (scale $scale)" >&2
  /tmp/dsbench -exp "$exp" -scale "$scale" -seed 1 "$@" > "results/$exp-scale$scale.txt" 2>&1
}
run fig8 1
run fig10 1
run ablation-truncation 1
run ablation-mapping 1
run fig7 0.5
run table2 0.5
run fig9 0.3
echo "remaining experiments done" >&2
