#!/bin/sh
# Quick-mode sweep: every experiment at reduced thresholds/epochs, for a
# fast end-to-end regeneration pass (single-digit minutes on one core).
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
mkdir -p results
go build -o /tmp/dsbench ./cmd/dsbench
for exp in table1 fig6a fig6 fig7 fig8 fig10 ablation-truncation ablation-mapping table2 fig9; do
  echo ">>> $exp" >&2
  /tmp/dsbench -exp "$exp" -scale "$SCALE" -seed 1 -quick -csv results | tee "results/quick-$exp.txt"
done
echo "quick sweep done" >&2
