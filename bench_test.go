package deepsqueeze

// One testing.B benchmark per paper table/figure. Each benchmark runs the
// corresponding harness experiment at a reduced scale (the full-scale runs
// are `dsbench -exp <id>`; see EXPERIMENTS.md) and reports the headline
// metric alongside Go's timing. Benchmarks are smoke-sized so
// `go test -bench=. -benchmem` completes in minutes.

import (
	"fmt"
	"strconv"
	"testing"

	"deepsqueeze/internal/bench"
)

// benchConfig is the smoke-run configuration shared by all benchmarks.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.1, Seed: 1, Quick: true}
}

// reportRatios attaches the report's final numeric column (usually a
// compression ratio) as custom benchmark metrics.
func reportRatios(b *testing.B, rep *bench.Report, metric string, col int) {
	if len(rep.Rows) == 0 {
		return
	}
	var sum float64
	var n int
	for _, row := range rep.Rows {
		if col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), metric)
	}
}

func runExperiment(b *testing.B, run func(bench.Config) (*bench.Report, error)) *bench.Report {
	b.Helper()
	var rep *bench.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkTable1Datasets regenerates the dataset summary (paper Table 1).
func BenchmarkTable1Datasets(b *testing.B) {
	rep := runExperiment(b, bench.Table1)
	if len(rep.Rows) != 5 {
		b.Fatalf("expected 5 datasets, got %d", len(rep.Rows))
	}
}

// BenchmarkFig6aBaselines regenerates the gzip/Parquet baseline ratios
// (paper Fig. 6a).
func BenchmarkFig6aBaselines(b *testing.B) {
	rep := runExperiment(b, bench.Fig6a)
	reportRatios(b, rep, "parquet_%", 2)
}

// BenchmarkFig6Compression regenerates the DeepSqueeze-vs-Squish ratio
// comparison (paper Figs. 6b–6f), one dataset per sub-benchmark.
func BenchmarkFig6Compression(b *testing.B) {
	for _, name := range []string{"corel", "forest", "census", "monitor", "criteo"} {
		b.Run(name, func(b *testing.B) {
			rep := runExperiment(b, func(c bench.Config) (*bench.Report, error) {
				return bench.Fig6(c, name)
			})
			reportRatios(b, rep, "squish_%", 2)
			reportRatios(b, rep, "ds_%", 3)
		})
	}
}

// BenchmarkTable2Runtime regenerates the runtime comparison (paper Table 2)
// on the two smallest datasets.
func BenchmarkTable2Runtime(b *testing.B) {
	rep := runExperiment(b, func(c bench.Config) (*bench.Report, error) {
		return bench.Table2(c, "corel", "monitor")
	})
	if len(rep.Rows) != 2 {
		b.Fatalf("expected 2 rows, got %d", len(rep.Rows))
	}
}

// BenchmarkFig7Ablations regenerates the optimization comparison (paper
// Fig. 7) on one numeric and one categorical dataset.
func BenchmarkFig7Ablations(b *testing.B) {
	rep := runExperiment(b, func(c bench.Config) (*bench.Report, error) {
		return bench.Fig7(c, "monitor", "census")
	})
	reportRatios(b, rep, "full_ds_%", 4)
}

// BenchmarkFig8Partitioning regenerates the k-means vs mixture-of-experts
// comparison (paper Fig. 8).
func BenchmarkFig8Partitioning(b *testing.B) {
	rep := runExperiment(b, bench.Fig8)
	reportRatios(b, rep, "kmeans_%", 2)
	reportRatios(b, rep, "moe_%", 3)
}

// BenchmarkFig9Tuning regenerates the hyperparameter-tuning convergence
// study (paper Fig. 9) on Monitor.
func BenchmarkFig9Tuning(b *testing.B) {
	rep := runExperiment(b, func(c bench.Config) (*bench.Report, error) {
		return bench.Fig9(c, "monitor")
	})
	if len(rep.Rows) == 0 {
		b.Fatal("no tuning trials recorded")
	}
	reportRatios(b, rep, "best_%", 5)
}

// BenchmarkFig10SampleSize regenerates the training-sample sensitivity
// study (paper Fig. 10).
func BenchmarkFig10SampleSize(b *testing.B) {
	rep := runExperiment(b, bench.Fig10)
	reportRatios(b, rep, "ratio_%", 2)
}

// BenchmarkAblationCodeTruncation measures the paper §6.2 code-truncation
// search against fixed 32-bit codes.
func BenchmarkAblationCodeTruncation(b *testing.B) {
	rep := runExperiment(b, func(c bench.Config) (*bench.Report, error) {
		return bench.AblationCodeTruncation(c, "monitor")
	})
	reportRatios(b, rep, "searched_%", 2)
}

// BenchmarkAblationExpertMapping measures the §6.4 expert-mapping
// strategies (order-preserving vs order-free).
func BenchmarkAblationExpertMapping(b *testing.B) {
	rep := runExperiment(b, bench.AblationExpertMapping)
	reportRatios(b, rep, "keep_order_%", 1)
	reportRatios(b, rep, "order_free_%", 2)
}

// BenchmarkCompressThroughput measures raw compression throughput on the
// Monitor workload (rows/sec), independent of the harness.
func BenchmarkCompressThroughput(b *testing.B) {
	cfg := benchConfig()
	rep, err := bench.Table1(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_ = rep
	for _, rows := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			tb := monitorTable(rows)
			opts := DefaultOptions()
			opts.TrainSampleRows = 1000
			opts.Train.Epochs = 4
			thr := UniformThresholds(tb, 0.1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compress(tb, thr, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

func monitorTable(rows int) *Table {
	schema := NewSchema(
		Column{Name: "cpu", Type: Numeric},
		Column{Name: "mem", Type: Numeric},
		Column{Name: "temp", Type: Numeric},
	)
	t := NewTable(schema, rows)
	for i := 0; i < rows; i++ {
		load := float64(i%97) / 97
		t.AppendRow(nil, []float64{load * 100, 20 + load*60, 35 + load*40})
	}
	return t
}
