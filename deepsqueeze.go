// Package deepsqueeze is a semantic compression library for tabular data,
// implementing "DeepSqueeze: Deep Semantic Compression for Tabular Data"
// (Ilkhechi et al., SIGMOD 2020).
//
// DeepSqueeze maps tuples to a low-dimensional representation with an
// autoencoder (optionally a sparsely-gated mixture of experts), materializes
// the decoder, the truncated per-tuple codes, and compact per-column
// correction streams ("failures"), and reaches compressed sizes well below
// columnar formats on tables whose columns share structure. Numerical
// columns support guaranteed error bounds for lossy compression; categorical
// columns always round-trip exactly.
//
// Quickstart:
//
//	table := deepsqueeze.NewTable(schema, 0)
//	// ... append rows ...
//	res, err := deepsqueeze.Compress(table, deepsqueeze.UniformThresholds(table, 0.05), deepsqueeze.DefaultOptions())
//	// res.Archive is a self-contained blob
//	back, err := deepsqueeze.Decompress(res.Archive)
//
// See examples/ for runnable programs and cmd/dsqz for a CLI.
package deepsqueeze

import (
	"context"
	"fmt"
	"io"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
)

// Re-exported data-model types. These aliases are the public names; the
// implementation lives in internal packages.
type (
	// ColumnType distinguishes categorical from numeric columns.
	ColumnType = dataset.ColumnType
	// Column describes one table column.
	Column = dataset.Column
	// Schema is an ordered list of columns.
	Schema = dataset.Schema
	// Table is a columnar in-memory table.
	Table = dataset.Table
)

// Column type constants.
const (
	// Categorical columns hold distinct unordered string values.
	Categorical = dataset.Categorical
	// Numeric columns hold integer or floating-point values.
	Numeric = dataset.Numeric
)

// Compression types.
type (
	// Options configures a compression run; start from DefaultOptions.
	Options = core.Options
	// Result is a compression outcome: archive plus size breakdown.
	Result = core.Result
	// Breakdown reports per-component archive sizes.
	Breakdown = core.Breakdown
	// PartitionMode selects mixture-of-experts or k-means partitioning.
	PartitionMode = core.PartitionMode
	// TuneOptions configures automatic hyperparameter tuning.
	TuneOptions = core.TuneOptions
	// TuneResult reports the tuner's chosen hyperparameters and history.
	TuneResult = core.TuneResult
	// Trial is one hyperparameter evaluation.
	Trial = core.Trial
	// StageStats is one pipeline stage's wall-clock and byte instrumentation
	// (Result.Stages, TuneResult.Stages).
	StageStats = core.StageStats
	// DecompressOptions configures DecompressContext: parallelism, column
	// projection, row range, and an untrusted-input row cap.
	DecompressOptions = core.DecompressOptions
	// DecompressResult is a decompression outcome: the (possibly projected)
	// table plus per-stage instrumentation.
	DecompressResult = core.DecompressResult
	// RowRange selects a half-open [Lo, Hi) span of rows in original order.
	RowRange = core.RowRange
)

// Partitioning modes.
const (
	// PartitionMoE trains a learned gate that routes tuples to experts.
	PartitionMoE = core.PartitionMoE
	// PartitionKMeans partitions tuples by k-means clustering.
	PartitionKMeans = core.PartitionKMeans
)

// NewSchema builds a schema from column descriptors.
func NewSchema(cols ...Column) *Schema { return dataset.NewSchema(cols...) }

// NewTable returns an empty table with storage preallocated for capacity
// rows.
func NewTable(schema *Schema, capacity int) *Table { return dataset.NewTable(schema, capacity) }

// ReadCSV reads a headered CSV file against the given schema.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) { return dataset.ReadCSV(r, schema) }

// DefaultOptions returns sensible defaults (single expert, code size 2,
// automatic code truncation).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultTuneOptions returns the tuning grid the paper's experiments imply.
func DefaultTuneOptions() TuneOptions { return core.DefaultTuneOptions() }

// UniformThresholds builds a per-column error-threshold slice assigning err
// to every numeric column and 0 (lossless) to every categorical column.
// err is a fraction of each column's value range, e.g. 0.05 for 5%.
func UniformThresholds(t *Table, err float64) []float64 {
	out := make([]float64, t.Schema.NumColumns())
	for i, c := range t.Schema.Columns {
		if c.Type == Numeric {
			out[i] = err
		}
	}
	return out
}

// Compress compresses a table under the given per-column error thresholds
// (see UniformThresholds) and options. The returned archive is
// self-contained: Decompress needs nothing else.
func Compress(t *Table, thresholds []float64, opts Options) (*Result, error) {
	return core.Compress(t, thresholds, opts)
}

// CompressContext is Compress with cancellation: the staged pipeline checks
// ctx between stages, between parallel work items, and between training
// batches, and returns ctx.Err() promptly once the context is done. Archives
// are byte-for-byte identical at every Options.Parallelism level for a fixed
// seed.
func CompressContext(ctx context.Context, t *Table, thresholds []float64, opts Options) (*Result, error) {
	return core.CompressContext(ctx, t, thresholds, opts)
}

// Decompress reconstructs a table from an archive produced by Compress.
// Categorical columns are exact; lossy numeric columns are within their
// archived error bounds.
func Decompress(archive []byte) (*Table, error) {
	return core.Decompress(archive)
}

// DecompressContext is Decompress with cancellation, bounded parallelism,
// and query-aware projection: opts.Columns decodes only the named columns
// (skipping the other columns' failure streams and decoder heads) and
// opts.RowRange restricts decoder inference and assembly to a row span.
// Output is byte-for-byte identical at every parallelism level.
func DecompressContext(ctx context.Context, archive []byte, opts DecompressOptions) (*DecompressResult, error) {
	return core.DecompressContext(ctx, archive, opts)
}

// CompressTo compresses t and writes the archive to w, returning the result
// metadata.
func CompressTo(w io.Writer, t *Table, thresholds []float64, opts Options) (*Result, error) {
	res, err := core.Compress(t, thresholds, opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(res.Archive); err != nil {
		return nil, fmt.Errorf("deepsqueeze: write archive: %w", err)
	}
	return res, nil
}

// DecompressFrom reads an entire archive from r and decompresses it.
func DecompressFrom(r io.Reader) (*Table, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("deepsqueeze: read archive: %w", err)
	}
	return core.Decompress(buf)
}

// Tune searches (code size × expert count) with Bayesian optimization over
// growing training samples (paper Fig. 5) and returns options ready to pass
// to Compress.
func Tune(t *Table, thresholds []float64, topts TuneOptions) (*TuneResult, error) {
	return core.Tune(t, thresholds, topts)
}

// TuneContext is Tune with cancellation and concurrent trial evaluation over
// a pool sized by topts.Base.Parallelism. The tuner's outcome is
// deterministic for a fixed (seed, Parallelism) pair.
func TuneContext(ctx context.Context, t *Table, thresholds []float64, topts TuneOptions) (*TuneResult, error) {
	return core.TuneContext(ctx, t, thresholds, topts)
}

// Stream is the paper's streaming-archival mode (§3): train once on an
// initial batch, then compress subsequent message batches into small
// archives that reference the trained model by hash instead of embedding
// it. Decompress batches with DecompressBatch.
type Stream = core.Stream

// NewStream trains on the initial batch and returns the stream compressor
// plus the initial batch's result. The result's archive doubles as the
// model archive every later batch depends on.
func NewStream(train *Table, thresholds []float64, opts Options) (*Stream, *Result, error) {
	return core.NewStream(train, thresholds, opts)
}

// DecompressBatch reconstructs a batch produced by Stream.CompressBatch,
// given the stream's model archive.
func DecompressBatch(modelArchive, batchArchive []byte) (*Table, error) {
	return core.DecompressBatch(modelArchive, batchArchive)
}

// DecompressBatchContext is DecompressBatch with cancellation and
// query-aware projection (see DecompressContext).
func DecompressBatchContext(ctx context.Context, modelArchive, batchArchive []byte, opts DecompressOptions) (*DecompressResult, error) {
	return core.DecompressBatchContext(ctx, modelArchive, batchArchive, opts)
}

// Streaming archive IO (format v2 row groups).
type (
	// ArchiveWriter compresses a table of unbounded length, streaming
	// row-group segments to an io.Writer as rows arrive. Memory stays
	// O(RowGroupSize) regardless of the table's total size.
	ArchiveWriter = core.ArchiveWriter
	// ArchiveReader decompresses a v2 archive group by group from an
	// io.Reader, holding at most one row group in memory.
	ArchiveReader = core.ArchiveReader
	// WriterStats instruments an ArchiveWriter (rows, groups, and the
	// buffered-rows high-water mark that proves bounded memory).
	WriterStats = core.WriterStats
	// CSVScanner reads a headered CSV file in bounded row chunks.
	CSVScanner = dataset.CSVScanner
	// CSVWriter writes tables incrementally as one headered CSV stream.
	CSVWriter = dataset.CSVWriter
)

// NewArchiveWriter returns a streaming compressor writing a self-contained
// v2 archive to w for tables with the given schema. The model trains on the
// first full row group (Options.RowGroupSize rows; 0 = default); later
// groups reuse it, re-fitting only dictionaries/scalers per group. Call
// Write with row batches of any size, then Close to emit the footer.
func NewArchiveWriter(w io.Writer, schema *Schema, thresholds []float64, opts Options) (*ArchiveWriter, error) {
	return core.NewArchiveWriter(w, schema, thresholds, opts)
}

// NewArchiveReader returns a streaming decompressor over an archive in r.
// Call Next repeatedly for one table per row group until io.EOF; the
// archive's checksum and footer index are verified before EOF is returned.
func NewArchiveReader(r io.Reader) (*ArchiveReader, error) {
	return core.NewArchiveReader(r)
}

// NewCSVScanner reads a headered CSV against the schema in bounded chunks —
// the ingest half of a larger-than-memory compress pipeline.
func NewCSVScanner(r io.Reader, schema *Schema) (*CSVScanner, error) {
	return dataset.NewCSVScanner(r, schema)
}

// NewCSVWriter writes tables incrementally as one headered CSV stream — the
// output half of a larger-than-memory decompress pipeline.
func NewCSVWriter(w io.Writer, schema *Schema) *CSVWriter {
	return dataset.NewCSVWriter(w, schema)
}

// ArchiveInfo summarizes an archive without decompressing it.
type ArchiveInfo = core.ArchiveInfo

// GroupInfo is one row group's footer-index entry (ArchiveInfo.Groups).
type GroupInfo = core.GroupInfo

// ArchiveSummary is the machine-readable archive description shared by
// `dsqz inspect -json` and the dsqzd daemon's /archives endpoint.
type ArchiveSummary = core.ArchiveSummary

// Inspect parses an archive's metadata (rows, schema, model shape,
// streaming flag) after validating its checksum, without running the
// decoder.
func Inspect(archive []byte) (*ArchiveInfo, error) { return core.Inspect(archive) }

// StreamStat aggregates one logical stream's chunks across row groups:
// chosen codecs, framed bytes, and stored-form bytes (InspectStreams).
type StreamStat = core.StreamStat

// StreamSummary is StreamStat's machine-readable form (ArchiveSummary.Streams).
type StreamSummary = core.StreamSummary

// InspectStreams walks an archive's row-group segments and reports
// per-stream codec choices and compressed-vs-raw sizes, so compression wins
// are attributable per column. It decodes stream frames but never runs the
// model.
func InspectStreams(archive []byte) ([]StreamStat, error) { return core.InspectStreams(archive) }

// StreamSummaries converts InspectStreams output into the machine-readable
// form embedded in ArchiveSummary.
func StreamSummaries(stats []StreamStat) []StreamSummary { return core.StreamSummaries(stats) }

// Archive is an open-once/serve-many handle: Open parses the archive's
// header, footer index, zone maps, and decoder section at most once, and any
// number of concurrent decompressions and queries then execute against the
// shared parsed state. Use it whenever the same archive is read more than
// once; the one-shot byte-slice entry points open a fresh handle per call.
type Archive = core.Archive

// ErrCorrupt classifies archive-corruption failures: every malformed-input
// error from Open, Decompress, Inspect, and Query wraps it, so callers can
// distinguish bad archives from bad requests with errors.Is.
var ErrCorrupt = core.ErrCorrupt

// Open parses an archive's metadata once and returns a reusable,
// concurrency-safe handle. The handle keeps a reference to the archive
// bytes; the caller must not mutate them afterwards.
func Open(archive []byte) (*Archive, error) { return core.Open(archive) }

// OpenFile reads and opens the archive at path; corruption-class failures
// are attributed to the path.
func OpenFile(path string) (*Archive, error) { return core.OpenFile(path) }

// QueryArchive is QueryContext against an open handle: planning reuses the
// handle's cached row-group index and zone maps, decoding reuses its cached
// decoders. Concurrent calls against one handle are safe.
func QueryArchive(ctx context.Context, a *Archive, opts QueryOptions) (*QueryResult, error) {
	return query.RunArchive(ctx, a, opts)
}

// VerifyBounds audits a decompressed table against the original: every
// categorical value must match exactly and every numeric value must lie
// within threshold × range of its column (plus floating-point slack).
// Returns nil when the paper's guarantee holds.
func VerifyBounds(original, decompressed *Table, thresholds []float64) error {
	stats := original.Stats()
	tol := make([]float64, original.Schema.NumColumns())
	for i, thr := range thresholds {
		if original.Schema.Columns[i].Type == Numeric && thr > 0 {
			tol[i] = thr * (stats[i].Max - stats[i].Min)
		}
	}
	return original.EqualWithin(decompressed, tol)
}

// Query types. Predicates are built with the Eq/Lt/Le/Gt/Ge/In/And/Or/Not
// constructors or parsed from text with ParsePredicate; queries evaluate
// directly against an archive, using per-row-group zone maps to skip groups
// that cannot contain a match.
type (
	// Predicate filters rows in a Query.
	Predicate = query.Pred
	// QueryOptions configures a Query: filter, projection, aggregates,
	// parallelism, and an optional row limit.
	QueryOptions = query.Options
	// QueryResult is a query outcome: matching rows or aggregates, plus
	// pruning statistics (groups pruned, bytes skipped).
	QueryResult = query.Result
	// AggOp requests one aggregate (count, or min/max/sum over a numeric
	// column).
	AggOp = query.AggOp
	// AggKind selects an aggregate function.
	AggKind = query.AggKind
	// Aggregate is one computed aggregate value.
	Aggregate = query.Aggregate
)

// Aggregate kinds.
const (
	AggCount = query.AggCount
	AggMin   = query.AggMin
	AggMax   = query.AggMax
	AggSum   = query.AggSum
)

// Predicate constructors, re-exported for building filters programmatically.
var (
	// Eq matches rows whose column equals v (string for categorical columns,
	// number for numeric ones).
	Eq = query.Eq
	// Lt matches rows whose numeric column is strictly less than v.
	Lt = query.Lt
	// Le matches rows whose numeric column is at most v.
	Le = query.Le
	// Gt matches rows whose numeric column is strictly greater than v.
	Gt = query.Gt
	// Ge matches rows whose numeric column is at least v.
	Ge = query.Ge
	// In matches rows whose column equals any of the listed values.
	In = query.In
	// PredAnd matches rows satisfying every child predicate.
	PredAnd = query.And
	// PredOr matches rows satisfying at least one child predicate.
	PredOr = query.Or
	// PredNot inverts a predicate.
	PredNot = query.Not
)

// ParsePredicate parses a SQL-flavoured filter expression, e.g.
// "seq >= 100 AND tag = 'hot'". Operators: = == != <> < <= > >= IN,
// combined with AND / OR / NOT and parentheses.
func ParsePredicate(s string) (Predicate, error) { return query.Parse(s) }

// Query evaluates a filter + projection + aggregation query directly against
// an archive. Row groups whose zone maps cannot contain a match are skipped
// without decoding; surviving groups decode in parallel and the predicate is
// re-evaluated on decoded values, so the result is byte-for-byte what a full
// Decompress followed by filtering would produce.
func Query(archive []byte, opts QueryOptions) (*QueryResult, error) {
	return query.Run(archive, opts)
}

// QueryContext is Query with cancellation.
func QueryContext(ctx context.Context, archive []byte, opts QueryOptions) (*QueryResult, error) {
	return query.RunContext(ctx, archive, opts)
}
