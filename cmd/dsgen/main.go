// Command dsgen emits the synthetic evaluation datasets as CSV.
//
// Usage:
//
//	dsgen -dataset monitor -rows 100000 > monitor.csv
//	dsgen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"deepsqueeze/internal/datagen"
)

func main() {
	name := flag.String("dataset", "", "dataset name")
	rows := flag.Int("rows", 0, "row count (0 = dataset default)")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list datasets")
	flag.Parse()

	if *list {
		for _, g := range datagen.All() {
			if g.PaperRows == 0 {
				fmt.Printf("%-11s %3d categorical %3d numeric  (extension fixture; default here: %d rows)\n",
					g.Name, g.CatCols, g.NumCols, g.DefaultRows)
				continue
			}
			fmt.Printf("%-11s %3d categorical %3d numeric  (paper: %d tuples, %.0f MB; default here: %d rows)\n",
				g.Name, g.CatCols, g.NumCols, g.PaperRows, g.PaperRawMB, g.DefaultRows)
		}
		return
	}
	g, ok := datagen.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dsgen: unknown dataset %q (use -list)\n", *name)
		os.Exit(2)
	}
	n := *rows
	if n <= 0 {
		n = g.DefaultRows
	}
	t := g.Gen(rand.New(rand.NewSource(*seed)), n)
	w := bufio.NewWriter(os.Stdout)
	if err := t.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "dsgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dsgen:", err)
		os.Exit(1)
	}
}
