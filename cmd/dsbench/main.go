// Command dsbench regenerates the paper's tables and figures on the
// synthetic stand-in datasets.
//
// Usage:
//
//	dsbench -exp fig6            # one experiment
//	dsbench -exp all             # everything, in paper order
//	dsbench -list                # show available experiment ids
//
// Flags:
//
//	-scale 1.0    row-count multiplier on each dataset's default size
//	-seed 1       random seed
//	-quick        trimmed sweeps and training, for smoke runs
//	-csv dir      also write each report as <dir>/<id>.csv
//	-v            progress logging to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"deepsqueeze/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Float64("scale", 1.0, "dataset row-count multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "trimmed smoke-run configuration")
	csvDir := flag.String("csv", "", "directory to also write CSV reports into")
	verbose := flag.Bool("v", false, "verbose progress")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "dsbench: -exp required (or -list)")
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Quick: *quick}
	if *verbose {
		cfg.Verbose = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Experiments()
	} else {
		e, err := bench.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsbench:", err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := rep.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dsbench:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "dsbench:", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, rep.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dsbench:", err)
				os.Exit(1)
			}
			if err := rep.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "dsbench:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
