// Command dsqzd serves DeepSqueeze archives over HTTP: the serve-many half
// of the open-once/serve-many split. Archives under -root are opened once
// into cached handles; queries against a warm handle skip the header,
// footer, zone-map, and decoder parsing entirely and pay only for the row
// groups and columns each query touches.
//
//	dsqzd -root /data/archives -addr :8642
//
//	POST /query     {"archive":"trips.dsqz","where":"tip > 5","select":"city",
//	                 "agg":"count","limit":100,"format":"csv"}
//	GET  /archives  every *.dsqz under -root, as dsqz inspect -json summaries
//	GET  /stats     server counters and per-archive stage aggregates
//
// With -blockcache set (e.g. -blockcache 256M) the server keeps a
// byte-budgeted LRU of decoded row-group × column blocks shared across
// queries: repeat queries over warm groups skip archive decoding entirely
// and filter directly over cached blocks, with results still byte-identical
// to the uncached path. /stats then reports block_hits, block_misses,
// block_bytes, and block_evictions.
//
// Query results are byte-identical to `dsqz query` on the same archive and
// predicate (format "csv" returns the same CSV bytes). SIGINT/SIGTERM drain
// in-flight queries before exit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
	"deepsqueeze/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	root := flag.String("root", ".", "directory the served archives live under")
	cache := flag.Int("cache", 0, "max open archive handles (0 = default 16)")
	conc := flag.Int("concurrency", 0, "max queries decoding at once (0 = all CPUs)")
	queue := flag.Int("queue", 0, "max queries waiting for a slot (0 = 4x concurrency, negative = none)")
	parallel := flag.Int("p", 0, "worker-pool parallelism shared by all queries (0 = all CPUs)")
	f32 := flag.Bool("f32", true, "serve archives whose plan mandates float32 decode (set to false to refuse them)")
	blockcache := flag.String("blockcache", "0", "decoded-block cache budget, e.g. 256M or 1G (0 = disabled)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight queries")
	flag.Parse()

	blockBytes, err := parseByteSize(*blockcache)
	if err != nil {
		log.Fatalf("dsqzd: -blockcache: %v", err)
	}
	d, err := newDaemon(*root, serve.Config{
		MaxOpenArchives: *cache,
		MaxConcurrent:   *conc,
		MaxQueue:        *queue,
		Parallelism:     *parallel,
		NoFloat32:       !*f32,
		BlockCacheBytes: blockBytes,
	})
	if err != nil {
		log.Fatalf("dsqzd: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: d.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("dsqzd: serving %s on %s", d.root, *addr)

	select {
	case err := <-errc:
		log.Fatalf("dsqzd: %v", err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight queries finish.
	log.Printf("dsqzd: shutting down (draining up to %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("dsqzd: shutdown: %v", err)
	}
}

// parseByteSize parses a byte count with an optional K/M/G (or KB/MB/GB)
// suffix, the -blockcache budget syntax. "0" disables.
func parseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t, mult = strings.TrimSuffix(t, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 0, 65536, 256M, 1G)", s)
	}
	return n * mult, nil
}

// daemon binds one serve.Server to one archive root directory.
type daemon struct {
	root string
	srv  *serve.Server
}

func newDaemon(root string, cfg serve.Config) (*daemon, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(abs)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("root %s is not a directory", abs)
	}
	return &daemon{root: abs, srv: serve.New(cfg)}, nil
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", d.handleQuery)
	mux.HandleFunc("/archives", d.handleArchives)
	mux.HandleFunc("/stats", d.handleStats)
	return mux
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Archive is the path relative to the server root (no absolute paths,
	// no "..").
	Archive string `json:"archive"`
	Where   string `json:"where,omitempty"`
	Select  string `json:"select,omitempty"` // comma-separated columns
	Agg     string `json:"agg,omitempty"`    // count,min:col,max:col,sum:col
	Limit   int    `json:"limit,omitempty"`
	// Format selects "json" (default) or "csv" — the same bytes
	// `dsqz query` writes.
	Format string `json:"format,omitempty"`
}

// queryResponse is the JSON /query result.
type queryResponse struct {
	Matched      int             `json:"matched"`
	Columns      []string        `json:"columns,omitempty"`
	Rows         [][]string      `json:"rows,omitempty"`
	Aggregates   []aggValue      `json:"aggregates,omitempty"`
	GroupsTotal  int             `json:"groups_total"`
	GroupsPruned int             `json:"groups_pruned"`
	BytesSkipped int64           `json:"bytes_skipped"`
	Stages       []stageDuration `json:"stages,omitempty"`
}

type aggValue struct {
	Agg   string  `json:"agg"`
	Col   string  `json:"col,omitempty"`
	Value float64 `json:"value"`
}

type stageDuration struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// resolve maps a request's archive name onto the root directory, rejecting
// absolute paths and traversal outside it.
func (d *daemon) resolve(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("archive is required")
	}
	if !filepath.IsLocal(name) {
		return "", fmt.Errorf("archive %q must be a relative path inside the root", name)
	}
	return filepath.Join(d.root, name), nil
}

func (d *daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	path, err := d.resolve(req.Archive)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts := query.Options{Limit: req.Limit}
	if req.Where != "" {
		if opts.Where, err = query.Parse(req.Where); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.Select != "" {
		for _, name := range strings.Split(req.Select, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				http.Error(w, fmt.Sprintf("bad select %q (empty column name)", req.Select), http.StatusBadRequest)
				return
			}
			opts.Select = append(opts.Select, name)
		}
	}
	if req.Agg != "" {
		if opts.Aggs, err = query.ParseAggs(req.Agg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}

	res, err := d.srv.Query(r.Context(), path, opts)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}

	if strings.EqualFold(req.Format, "csv") {
		if res.Table == nil {
			http.Error(w, "csv format requires a row query (no agg)", http.StatusBadRequest)
			return
		}
		var buf bytes.Buffer
		if err := res.Table.WriteCSV(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.Header().Set("X-Matched-Rows", strconv.Itoa(res.Matched))
		w.Write(buf.Bytes())
		return
	}

	resp := queryResponse{
		Matched:      res.Matched,
		GroupsTotal:  res.GroupsTotal,
		GroupsPruned: res.GroupsPruned,
		BytesSkipped: res.BytesSkipped,
	}
	for _, st := range res.Stages {
		resp.Stages = append(resp.Stages, stageDuration{Name: st.Name, WallNS: st.Wall.Nanoseconds(), Bytes: st.Bytes})
	}
	for _, a := range res.Aggregates {
		resp.Aggregates = append(resp.Aggregates, aggValue{Agg: a.Op.Kind.String(), Col: a.Op.Col, Value: a.Value})
	}
	if res.Table != nil {
		resp.Columns, resp.Rows = tableCells(res.Table)
	}
	writeJSON(w, resp)
}

// statusFor maps a query failure onto its HTTP status: shed requests are
// retryable (503), missing archives are 404, and a client that hung up gets
// the conventional 499.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, fs.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	}
	return http.StatusInternalServerError
}

// tableCells renders a table into column names and per-row string cells,
// formatting numerics exactly as WriteCSV does so the two formats agree.
func tableCells(t *dataset.Table) ([]string, [][]string) {
	cols := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		cols[i] = c.Name
	}
	rows := make([][]string, t.NumRows())
	for r := range rows {
		row := make([]string, len(cols))
		for i, c := range t.Schema.Columns {
			if c.Type == dataset.Categorical {
				row[i] = t.Str[i][r]
			} else {
				row[i] = strconv.FormatFloat(t.Num[i][r], 'g', -1, 64)
			}
		}
		rows[r] = row
	}
	return cols, rows
}

func (d *daemon) handleArchives(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type archiveEntry struct {
		*core.ArchiveSummary
		Error string `json:"error,omitempty"`
	}
	var out []archiveEntry
	err := filepath.WalkDir(d.root, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(de.Name(), ".dsqz") {
			return err
		}
		rel, rerr := filepath.Rel(d.root, path)
		if rerr != nil {
			return rerr
		}
		sum, serr := d.srv.Summary(path)
		if serr != nil {
			// Report the broken archive with its path instead of failing the
			// whole listing.
			out = append(out, archiveEntry{Error: fmt.Sprintf("%s: %v", rel, serr)})
			return nil
		}
		sum.Path = rel
		out = append(out, archiveEntry{ArchiveSummary: sum})
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, out)
}

func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, d.srv.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
