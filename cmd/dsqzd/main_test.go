package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"deepsqueeze/internal/core"
	"deepsqueeze/internal/dataset"
	"deepsqueeze/internal/query"
	"deepsqueeze/internal/serve"
)

var (
	archOnce  sync.Once
	archBytes []byte
	archErr   error
)

// testArchive compresses a small grouped archive once per test binary.
func testArchive(t *testing.T) []byte {
	t.Helper()
	archOnce.Do(func() {
		schema := dataset.NewSchema(
			dataset.Column{Name: "tag", Type: dataset.Categorical},
			dataset.Column{Name: "seq", Type: dataset.Numeric},
		)
		rows := 512
		tb := dataset.NewTable(schema, rows)
		rng := rand.New(rand.NewSource(5))
		tags := []string{"x", "y", "z"}
		for i := 0; i < rows; i++ {
			tb.AppendRow([]string{tags[rng.Intn(len(tags))]}, []float64{float64(i)})
		}
		opts := core.DefaultOptions()
		opts.Seed = 5
		opts.CodeSize = 2
		opts.Train.Epochs = 2
		opts.TrainSampleRows = 256
		opts.RowGroupSize = 64
		res, err := core.Compress(tb, []float64{0, 0}, opts)
		if err != nil {
			archErr = err
			return
		}
		archBytes = res.Archive
	})
	if archErr != nil {
		t.Fatal(archErr)
	}
	return archBytes
}

// testDaemon serves a temp root holding the test archive as t.dsqz.
func testDaemon(t *testing.T) (*daemon, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "t.dsqz"), testArchive(t), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(dir, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

func postQuery(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestQueryCSVByteIdentical pins the daemon's acceptance contract: a csv
// query over HTTP returns exactly the bytes `dsqz query` writes for the same
// archive and predicate.
func TestQueryCSVByteIdentical(t *testing.T) {
	d, _ := testDaemon(t)
	h := d.handler()

	want, err := query.Run(testArchive(t), query.Options{Where: mustParse(t, "seq < 100")})
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.Table.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	w := postQuery(t, h, `{"archive":"t.dsqz","where":"seq < 100","format":"csv"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Body.Bytes(); !bytes.Equal(got, wantCSV.Bytes()) {
		t.Fatalf("csv over HTTP differs from dsqz query output:\n%s\nvs\n%s", got, wantCSV.Bytes())
	}
	if got := w.Header().Get("X-Matched-Rows"); got != "100" {
		t.Fatalf("X-Matched-Rows = %q, want 100", got)
	}
}

func mustParse(t *testing.T, s string) query.Pred {
	t.Helper()
	p, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestQueryJSON exercises the JSON response shape for row and aggregate
// queries.
func TestQueryJSON(t *testing.T) {
	d, _ := testDaemon(t)
	h := d.handler()

	w := postQuery(t, h, `{"archive":"t.dsqz","where":"seq < 10","select":"seq"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Matched int        `json:"matched"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Pruned  int        `json:"groups_pruned"`
		Total   int        `json:"groups_total"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Matched != 10 || len(resp.Rows) != 10 {
		t.Fatalf("matched=%d rows=%d, want 10/10", resp.Matched, len(resp.Rows))
	}
	if len(resp.Columns) != 1 || resp.Columns[0] != "seq" {
		t.Fatalf("columns = %v, want [seq]", resp.Columns)
	}
	if resp.Total != 8 || resp.Pruned == 0 {
		t.Fatalf("groups %d/%d pruned, want pruning over 8 groups", resp.Pruned, resp.Total)
	}

	w = postQuery(t, h, `{"archive":"t.dsqz","where":"seq < 10","agg":"count,max:seq"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("agg status %d: %s", w.Code, w.Body.String())
	}
	var aresp struct {
		Matched    int `json:"matched"`
		Rows       [][]string
		Aggregates []struct {
			Agg   string  `json:"agg"`
			Col   string  `json:"col"`
			Value float64 `json:"value"`
		} `json:"aggregates"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &aresp); err != nil {
		t.Fatal(err)
	}
	if len(aresp.Rows) != 0 || len(aresp.Aggregates) != 2 {
		t.Fatalf("agg query returned %d rows, %d aggregates", len(aresp.Rows), len(aresp.Aggregates))
	}
	if aresp.Aggregates[0].Value != 10 || aresp.Aggregates[1].Value != 9 {
		t.Fatalf("aggregates = %+v, want count 10, max 9", aresp.Aggregates)
	}
}

// TestQueryErrors covers the daemon's client-error surface: bad methods,
// bodies, predicates, traversal attempts, and missing archives.
func TestQueryErrors(t *testing.T) {
	d, _ := testDaemon(t)
	h := d.handler()

	cases := []struct {
		name   string
		body   string
		status int
		substr string
	}{
		{"missing archive field", `{}`, http.StatusBadRequest, "archive is required"},
		{"traversal", `{"archive":"../etc/passwd"}`, http.StatusBadRequest, "inside the root"},
		{"absolute", `{"archive":"/etc/passwd"}`, http.StatusBadRequest, "inside the root"},
		{"bad where", `{"archive":"t.dsqz","where":"seq <>< 1"}`, http.StatusBadRequest, "query:"},
		{"bad agg", `{"archive":"t.dsqz","agg":"median:seq"}`, http.StatusBadRequest, "bad aggregate"},
		{"not found", `{"archive":"nope.dsqz"}`, http.StatusNotFound, "nope.dsqz"},
		{"csv of agg", `{"archive":"t.dsqz","agg":"count","format":"csv"}`, http.StatusBadRequest, "row query"},
	}
	for _, c := range cases {
		w := postQuery(t, h, c.body)
		if w.Code != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.status, w.Body.String())
		}
		if !strings.Contains(w.Body.String(), c.substr) {
			t.Errorf("%s: body %q, want %q in it", c.name, w.Body.String(), c.substr)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", w.Code)
	}
}

// TestStatusFor checks the error → HTTP status mapping, including the
// distinct retryable status for shed requests.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{serve.ErrOverloaded, http.StatusServiceUnavailable},
		{fs.ErrNotExist, http.StatusNotFound},
		{context.Canceled, 499},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestArchivesEndpoint lists every archive under the root with its summary,
// reporting broken files inline instead of failing the listing.
func TestArchivesEndpoint(t *testing.T) {
	d, dir := testDaemon(t)
	if err := os.WriteFile(filepath.Join(dir, "bad.dsqz"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := d.handler()
	req := httptest.NewRequest(http.MethodGet, "/archives", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var out []struct {
		Path  string `json:"path"`
		Rows  int    `json:"rows"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("listed %d archives, want 2: %s", len(out), w.Body.String())
	}
	var sawGood, sawBad bool
	for _, e := range out {
		switch {
		case e.Path == "t.dsqz" && e.Rows == 512 && e.Error == "":
			sawGood = true
		case e.Error != "" && strings.Contains(e.Error, "bad.dsqz"):
			sawBad = true
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("listing missing entries (good=%v bad=%v): %s", sawGood, sawBad, w.Body.String())
	}
}

// TestStatsEndpoint checks /stats reflects served queries.
func TestStatsEndpoint(t *testing.T) {
	d, _ := testDaemon(t)
	h := d.handler()
	if w := postQuery(t, h, `{"archive":"t.dsqz","where":"seq < 5"}`); w.Code != http.StatusOK {
		t.Fatalf("query status %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var st serve.Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 || st.OpenArchives != 1 {
		t.Fatalf("stats = %+v, want 1 query, 1 open archive", st)
	}
}

// TestJSONAndCSVAgree checks the two response formats render identical cell
// values, so clients can switch formats without changing results.
func TestJSONAndCSVAgree(t *testing.T) {
	d, _ := testDaemon(t)
	h := d.handler()
	const body = `{"archive":"t.dsqz","where":"seq >= 500"`
	wj := postQuery(t, h, body+`}`)
	wc := postQuery(t, h, body+`,"format":"csv"}`)
	if wj.Code != http.StatusOK || wc.Code != http.StatusOK {
		t.Fatalf("status json=%d csv=%d", wj.Code, wc.Code)
	}
	var resp struct {
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(wj.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var fromJSON bytes.Buffer
	fromJSON.WriteString(strings.Join(resp.Columns, ",") + "\n")
	for _, row := range resp.Rows {
		fromJSON.WriteString(strings.Join(row, ",") + "\n")
	}
	csv, err := io.ReadAll(wc.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromJSON.Bytes(), csv) {
		t.Fatalf("json cells and csv disagree:\n%s\nvs\n%s", fromJSON.Bytes(), csv)
	}
}

// TestParseByteSize pins the -blockcache size syntax.
func TestParseByteSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"65536", 65536},
		{"4K", 4 << 10},
		{"4KB", 4 << 10},
		{"256m", 256 << 20},
		{"1G", 1 << 30},
		{" 2 MB ", 2 << 20},
	} {
		got, err := parseByteSize(tc.in)
		if err != nil {
			t.Fatalf("parseByteSize(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "-1", "1T", "abc", "12MiB"} {
		if _, err := parseByteSize(bad); err == nil {
			t.Fatalf("parseByteSize(%q): no error", bad)
		}
	}
}

// TestBlockCacheDaemon runs the daemon with the block cache enabled: repeat
// queries must return byte-identical responses to the uncached daemon, and
// /stats must report the block-cache counters.
func TestBlockCacheDaemon(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "t.dsqz"), testArchive(t), 0o644); err != nil {
		t.Fatal(err)
	}
	plain, err := newDaemon(dir, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := newDaemon(dir, serve.Config{BlockCacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ph, ch := plain.handler(), cached.handler()

	bodies := []string{
		`{"archive":"t.dsqz","where":"seq >= 400","format":"csv"}`,
		`{"archive":"t.dsqz","where":"tag = 'x'","select":"seq","format":"csv"}`,
		`{"archive":"t.dsqz","where":"seq < 256","agg":"count,sum:seq"}`,
	}
	for pass := 0; pass < 2; pass++ {
		for i, body := range bodies {
			pw, cw := postQuery(t, ph, body), postQuery(t, ch, body)
			if pw.Code != http.StatusOK || cw.Code != http.StatusOK {
				t.Fatalf("pass %d body %d: status %d/%d", pass, i, pw.Code, cw.Code)
			}
			if strings.Contains(body, "csv") {
				// CSV responses carry only result bytes: must match exactly.
				if !bytes.Equal(pw.Body.Bytes(), cw.Body.Bytes()) {
					t.Fatalf("pass %d body %d: cached daemon response differs from uncached", pass, i)
				}
				continue
			}
			// JSON responses include per-stage wall times (never byte-equal
			// across runs); compare the result fields.
			var pr, cr queryResponse
			if err := json.Unmarshal(pw.Body.Bytes(), &pr); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(cw.Body.Bytes(), &cr); err != nil {
				t.Fatal(err)
			}
			if pr.Matched != cr.Matched || !reflect.DeepEqual(pr.Aggregates, cr.Aggregates) ||
				!reflect.DeepEqual(pr.Columns, cr.Columns) || !reflect.DeepEqual(pr.Rows, cr.Rows) {
				t.Fatalf("pass %d body %d: cached daemon result differs from uncached", pass, i)
			}
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := httptest.NewRecorder()
	ch.ServeHTTP(w, req)
	var st serve.Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.BlockCacheBudget != 8<<20 {
		t.Fatalf("block_cache_budget = %d, want %d", st.BlockCacheBudget, 8<<20)
	}
	if st.BlockMisses == 0 || st.BlockHits == 0 {
		t.Fatalf("block counters hits=%d misses=%d, want both > 0 after a warm pass", st.BlockHits, st.BlockMisses)
	}
	if st.BlockBytes <= 0 || st.BlockBytes > st.BlockCacheBudget {
		t.Fatalf("block_bytes = %d, want in (0, %d]", st.BlockBytes, st.BlockCacheBudget)
	}
}
