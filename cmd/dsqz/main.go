// Command dsqz compresses and decompresses tabular CSV data with
// DeepSqueeze.
//
// Usage:
//
//	dsqz compress   -in data.csv -schema "city:cat,temp:num" -out data.dsqz [flags]
//	dsqz decompress -in data.dsqz -out data.csv [-cols city,temp] [-rows 0:1000] [-p 4] [-v]
//	dsqz query      -in data.dsqz -where "temp >= 30 AND city = 'cusco'" [-select city,temp] [-agg count,min:temp] [-v]
//	dsqz inspect    -in data.dsqz [-json]
//
// The schema flag lists column name:type pairs in file order, where type is
// "cat" (categorical) or "num" (numeric). Compression flags:
//
//	-error 0.05        relative error threshold for all numeric columns
//	-code 2            code size (representation-layer width)
//	-experts 1         number of experts
//	-rowgroup 4096     rows per archive row group (0 = default)
//	-codec auto        stream codecs the best-of selector may try: auto,
//	                   stored, deflate, range, range-adaptive, range-cpt
//	-sample 0          training sample rows (0 = full data)
//	-resbit            keep high-cardinality categoricals in the model as
//	                   stacked residual digits instead of the colfile fallback
//	-maxcard 256       alphabet size the model predicts per categorical column
//	-fallback-distinct 65536
//	                   distinct-value count above which a categorical column
//	                   falls back to direct storage (with -resbit: the
//	                   residual path removes this ceiling)
//	-fallback-ratio 0.5
//	                   near-unique ratio (distinct/rows) above which a
//	                   categorical column always falls back
//	-tune              run Bayesian hyperparameter tuning first
//	-seed 1            random seed
//	-p 0               pipeline parallelism (0 = all CPUs)
//	-v                 verbose progress + per-stage pipeline report
//	-cpuprofile f      write a CPU profile to f (inspect with go tool pprof)
//	-memprofile f      write a heap profile to f on exit
//
// Compression streams the CSV through the row-group archive writer one
// group at a time, so peak memory is bounded by the row-group size, not
// the file size. With -tune the whole table is loaded instead (the tuner
// needs it) and compressed in memory. Decompression without -cols/-rows
// likewise streams group by group; with a projection or row span it uses
// the in-memory query-aware decoder.
//
// Decompression flags:
//
//	-cols a,b          decode only the named columns (projection)
//	-rows lo:hi        decode only the half-open row span, original order
//	-p 0               pipeline parallelism (0 = all CPUs)
//	-v                 per-stage pipeline report
//	-cpuprofile f      write a CPU profile to f
//	-memprofile f      write a heap profile to f on exit
//
// Query evaluates a filter directly against the archive, skipping row groups
// whose zone maps cannot contain a match:
//
//	-where expr        filter: = == != <> < <= > >= IN, AND/OR/NOT, parens;
//	                   strings single-quoted ('it''s' escapes a quote)
//	-select a,b        columns to return (default: all)
//	-agg list          count,min:col,max:col,sum:col — print aggregates
//	                   instead of rows
//	-limit n           cap returned rows
//	-out f             write matching rows as CSV to f (default: stdout)
//	-v                 per-stage report plus groups-pruned / bytes-skipped
//
// SIGINT/SIGTERM cancel an in-flight compression cleanly: the staged
// pipeline returns promptly with the context's error and no partial
// archive is left behind (the output file is only written on success).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"deepsqueeze"
	"deepsqueeze/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "compress":
		err = runCompress(ctx, os.Args[2:])
	case "decompress":
		err = runDecompress(ctx, os.Args[2:])
	case "query":
		err = runQuery(ctx, os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dsqz: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsqz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dsqz {compress|decompress|query|inspect} [flags]")
	fmt.Fprintln(os.Stderr, "run 'dsqz <subcommand> -h' for flags")
}

// startProfiles begins CPU profiling into cpu and returns a stop function
// that finalizes it and snapshots the heap into mem; either path may be
// empty. The stop function must run on every exit path so the profiles are
// complete — profiled work is wrapped in a closure, not deferred past it.
func startProfiles(cpu, mem string) (func() error, error) {
	var cf *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cf = f
	}
	return func() error {
		if cf != nil {
			pprof.StopCPUProfile()
			if err := cf.Close(); err != nil {
				return err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // capture live heap, not transient garbage
			return pprof.WriteHeapProfile(f)
		}
		return nil
	}, nil
}

// withProfiles runs body between startProfiles and its stop function,
// surfacing the first error of the two.
func withProfiles(cpu, mem string, body func() error) error {
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		return err
	}
	err = body()
	if perr := stop(); err == nil {
		err = perr
	}
	return err
}

// parseSchema parses "name:cat,name:num,..." descriptors.
func parseSchema(s string) (*deepsqueeze.Schema, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -schema (e.g. \"city:cat,temp:num\")")
	}
	var cols []deepsqueeze.Column
	for _, part := range strings.Split(s, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad schema entry %q (want name:cat or name:num)", part)
		}
		switch typ {
		case "cat":
			cols = append(cols, deepsqueeze.Column{Name: name, Type: deepsqueeze.Categorical})
		case "num":
			cols = append(cols, deepsqueeze.Column{Name: name, Type: deepsqueeze.Numeric})
		default:
			return nil, fmt.Errorf("bad column type %q in %q (want cat or num)", typ, part)
		}
	}
	return deepsqueeze.NewSchema(cols...), nil
}

func runCompress(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	out := fs.String("out", "", "output archive file")
	schemaStr := fs.String("schema", "", "column schema: name:cat|num, comma separated")
	errThr := fs.Float64("error", 0, "relative error threshold for numeric columns (0 = lossless)")
	code := fs.Int("code", 2, "code size")
	experts := fs.Int("experts", 1, "number of experts")
	rowgroup := fs.Int("rowgroup", 0, "rows per archive row group (0 = default)")
	codecName := fs.String("codec", "", "stream codec selection: auto (default), stored, deflate, range, range-adaptive, range-cpt")
	sample := fs.Int("sample", 0, "training sample rows (0 = all)")
	resbit := fs.Bool("resbit", false, "keep high-cardinality categorical columns in the model as stacked residual digits instead of the colfile fallback")
	maxcard := fs.Int("maxcard", 0, "alphabet size the model predicts per categorical column (0 = default 256)")
	fbDistinct := fs.Int("fallback-distinct", 0, "distinct-value ceiling for in-model categoricals (0 = default 65536)")
	fbRatio := fs.Float64("fallback-ratio", 0, "near-unique distinct/rows ratio above which categoricals fall back (0 = default 0.5)")
	f32 := fs.Bool("f32", false, "record the float32-decode plan flag: corrections are computed against float32 inference and every reader decodes through the float32 kernel path")
	tune := fs.Bool("tune", false, "run hyperparameter tuning before compressing")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("p", 0, "pipeline parallelism (0 = all CPUs)")
	verbose := fs.Bool("v", false, "verbose progress + per-stage pipeline report")
	cpuprof := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprof := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compress needs -in and -out")
	}
	schema, err := parseSchema(*schemaStr)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	opts := deepsqueeze.DefaultOptions()
	opts.CodeSize = *code
	opts.NumExperts = *experts
	opts.RowGroupSize = *rowgroup
	opts.Codec = *codecName
	opts.TrainSampleRows = *sample
	opts.Seed = *seed
	opts.Parallelism = *parallel
	opts.Float32Decode = *f32
	opts.Preproc.ResidualCats = *resbit
	if *maxcard != 0 {
		if *maxcard < 1 {
			return fmt.Errorf("bad -maxcard %d (want a positive alphabet size)", *maxcard)
		}
		opts.Preproc.MaxModelCardinality = *maxcard
	}
	if *fbDistinct != 0 {
		if *fbDistinct < 1 {
			return fmt.Errorf("bad -fallback-distinct %d (want a positive distinct-value ceiling)", *fbDistinct)
		}
		opts.Preproc.FallbackMaxDistinct = *fbDistinct
	}
	if *fbRatio != 0 {
		if *fbRatio < 0 || *fbRatio > 1 {
			return fmt.Errorf("bad -fallback-ratio %v (want a fraction in (0, 1])", *fbRatio)
		}
		opts.Preproc.FallbackDistinctRatio = *fbRatio
	}
	if *verbose {
		opts.Verbose = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	return withProfiles(*cpuprof, *memprof, func() error {
		if *tune {
			return compressTuned(ctx, f, *out, schema, *errThr, opts, *verbose)
		}
		return compressStream(ctx, f, *out, schema, *errThr, opts)
	})
}

// compressTuned loads the whole table (the tuner needs it), tunes, and
// compresses in memory.
func compressTuned(ctx context.Context, f *os.File, out string, schema *deepsqueeze.Schema, errThr float64, opts deepsqueeze.Options, verbose bool) error {
	table, err := deepsqueeze.ReadCSV(f, schema)
	if err != nil {
		return err
	}
	thresholds := deepsqueeze.UniformThresholds(table, errThr)
	topts := deepsqueeze.DefaultTuneOptions()
	topts.Base = opts
	tres, err := deepsqueeze.TuneContext(ctx, table, thresholds, topts)
	if err != nil {
		return fmt.Errorf("tuning: %w", err)
	}
	rowgroup, codecName := opts.RowGroupSize, opts.Codec
	opts = tres.Best
	opts.RowGroupSize = rowgroup
	opts.Codec = codecName
	fmt.Fprintf(os.Stderr, "tuned: code=%d experts=%d sample=%d (%d trials)\n",
		opts.CodeSize, opts.NumExperts, opts.TrainSampleRows, len(tres.Trials))
	res, err := deepsqueeze.CompressContext(ctx, table, thresholds, opts)
	if err != nil {
		return err
	}
	if verbose {
		printStages(res.Stages)
	}
	if err := os.WriteFile(out, res.Archive, 0o644); err != nil {
		return err
	}
	raw := table.CSVSize()
	fmt.Printf("compressed %d rows: %d → %d bytes (%.2f%%), code bits %d\n",
		table.NumRows(), raw, res.Breakdown.Total, 100*res.Ratio(raw), res.CodeBits)
	printBreakdown(res.Breakdown)
	return nil
}

// countReader counts raw bytes consumed from the input CSV.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// compressStream pipes the CSV through the row-group archive writer one
// chunk at a time, writing to out+".tmp" and renaming on success so an
// interrupt never leaves a partial archive behind.
func compressStream(ctx context.Context, f *os.File, out string, schema *deepsqueeze.Schema, errThr float64, opts deepsqueeze.Options) error {
	thresholds := make([]float64, schema.NumColumns())
	for i, c := range schema.Columns {
		if c.Type == deepsqueeze.Numeric {
			thresholds[i] = errThr
		}
	}
	cr := &countReader{r: bufio.NewReaderSize(f, 1<<20)}
	sc, err := deepsqueeze.NewCSVScanner(cr, schema)
	if err != nil {
		return err
	}
	tmp := out + ".tmp"
	of, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		of.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(of, 1<<20)
	aw, err := deepsqueeze.NewArchiveWriter(bw, schema, thresholds, opts)
	if err != nil {
		return fail(err)
	}
	chunkRows := opts.RowGroupSize
	if chunkRows <= 0 {
		chunkRows = 4096
	}
	for {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		chunk, err := sc.ReadChunk(chunkRows)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		if err := aw.Write(chunk); err != nil {
			return fail(err)
		}
	}
	if err := aw.Close(); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := of.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, out); err != nil {
		os.Remove(tmp)
		return err
	}
	stats := aw.Stats()
	ratio := 0.0
	if cr.n > 0 {
		ratio = 100 * float64(stats.BytesWritten) / float64(cr.n)
	}
	fmt.Printf("compressed %d rows in %d row group(s): %d → %d bytes (%.2f%%)\n",
		stats.Rows, stats.Groups, cr.n, stats.BytesWritten, ratio)
	return nil
}

// printStages renders the per-stage pipeline report (-v).
func printStages(stages []deepsqueeze.StageStats) {
	fmt.Fprintln(os.Stderr, "pipeline stages:")
	for _, st := range stages {
		if st.Bytes > 0 {
			fmt.Fprintf(os.Stderr, "  %-18s %12v %10d bytes\n", st.Name, st.Wall.Round(time.Microsecond), st.Bytes)
		} else {
			fmt.Fprintf(os.Stderr, "  %-18s %12v\n", st.Name, st.Wall.Round(time.Microsecond))
		}
	}
}

func runDecompress(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "", "input archive file")
	out := fs.String("out", "", "output CSV file")
	cols := fs.String("cols", "", "comma-separated column names to decode (default: all)")
	rows := fs.String("rows", "", "row span lo:hi (half-open, original order; default: all)")
	parallel := fs.Int("p", 0, "pipeline parallelism (0 = all CPUs)")
	verbose := fs.Bool("v", false, "per-stage pipeline report")
	cpuprof := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprof := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress needs -in and -out")
	}
	if *cols == "" && *rows == "" {
		// No projection or row span: stream group by group, holding at
		// most one row group of output in memory.
		return withProfiles(*cpuprof, *memprof, func() error {
			return decompressStream(ctx, *in, *out, *verbose)
		})
	}
	// Flags are validated before any file IO: a reversed or negative row
	// span can never be satisfied, so it fails here rather than after the
	// archive has been read.
	opts := deepsqueeze.DecompressOptions{Parallelism: *parallel}
	if *cols != "" {
		for _, name := range strings.Split(*cols, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				return fmt.Errorf("bad -cols %q (empty column name)", *cols)
			}
			opts.Columns = append(opts.Columns, name)
		}
	}
	if *rows != "" {
		rr, err := parseRowRange(*rows)
		if err != nil {
			return err
		}
		opts.RowRange = rr
	}
	return withProfiles(*cpuprof, *memprof, func() error {
		return decompressQuery(ctx, *in, *out, opts, *verbose)
	})
}

// parseRowRange parses a "lo:hi" half-open row span and rejects spans that
// can never select anything (negative bounds, hi < lo) before any IO runs.
func parseRowRange(s string) (deepsqueeze.RowRange, error) {
	lo, hi, ok := strings.Cut(s, ":")
	var rr deepsqueeze.RowRange
	if ok {
		_, errLo := fmt.Sscanf(lo, "%d", &rr.Lo)
		_, errHi := fmt.Sscanf(hi, "%d", &rr.Hi)
		if errLo != nil || errHi != nil {
			ok = false
		}
	}
	if !ok {
		return rr, fmt.Errorf("bad -rows %q (want lo:hi, e.g. 1000:2000)", s)
	}
	if rr.Lo < 0 || rr.Hi < 0 {
		return rr, fmt.Errorf("bad -rows %q (negative bound)", s)
	}
	if rr.Hi < rr.Lo {
		return rr, fmt.Errorf("bad -rows %q (reversed range: hi < lo)", s)
	}
	return rr, nil
}

// archiveErr attributes corruption-class failures to the archive file, so
// logs spanning many archives stay attributable. Other errors (bad flags,
// unknown columns, cancellation) already name their cause and pass through.
func archiveErr(path string, err error) error {
	if err != nil && errors.Is(err, core.ErrCorrupt) {
		return fmt.Errorf("%s: %w", path, err)
	}
	return err
}

// validateAgainstArchive checks the requested columns and row span against
// the archive's schema and row count — metadata only, before any segment is
// decoded — so typos fail with a clear message instead of a decode error.
func validateAgainstArchive(archive []byte, cols []string, rr deepsqueeze.RowRange) error {
	info, err := deepsqueeze.Inspect(archive)
	if err != nil {
		return err
	}
	for _, name := range cols {
		found := false
		for _, c := range info.Schema.Columns {
			if c.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("archive has no column %q (columns: %s)", name, schemaNames(info.Schema))
		}
	}
	if rr.Hi > info.Rows {
		return fmt.Errorf("-rows %d:%d exceeds the archive's %d rows", rr.Lo, rr.Hi, info.Rows)
	}
	return nil
}

func schemaNames(s *deepsqueeze.Schema) string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}

// decompressQuery runs the in-memory query-aware decoder (projection and/or
// row span) and writes the result as CSV.
func decompressQuery(ctx context.Context, in, out string, opts deepsqueeze.DecompressOptions, verbose bool) error {
	buf, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if err := validateAgainstArchive(buf, opts.Columns, opts.RowRange); err != nil {
		return archiveErr(in, err)
	}
	res, err := deepsqueeze.DecompressContext(ctx, buf, opts)
	if err != nil {
		return archiveErr(in, err)
	}
	if verbose {
		printStages(res.Stages)
	}
	table := res.Table
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	bw := bufio.NewWriterSize(of, 1<<20)
	if err := table.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("decompressed %d rows × %d columns to %s\n",
		table.NumRows(), table.Schema.NumColumns(), out)
	return of.Close()
}

// decompressStream reads the archive group by group and appends each
// group's rows to the output CSV, so peak memory is one row group.
func decompressStream(ctx context.Context, in, out string, verbose bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	ar, err := deepsqueeze.NewArchiveReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return archiveErr(in, err)
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	bw := bufio.NewWriterSize(of, 1<<20)
	cw := deepsqueeze.NewCSVWriter(bw, ar.Schema())
	var rows, groups int
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		g, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return archiveErr(in, err)
		}
		if err := cw.WriteTable(g); err != nil {
			return err
		}
		rows += g.NumRows()
		groups++
		if verbose {
			fmt.Fprintf(os.Stderr, "group %d: %d rows\n", groups-1, g.NumRows())
		}
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("decompressed %d rows in %d row group(s) to %s\n", rows, groups, out)
	return of.Close()
}

func runQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "input archive file")
	where := fs.String("where", "", "filter expression, e.g. \"seq >= 100 AND tag = 'hot'\"")
	sel := fs.String("select", "", "comma-separated columns to return (default: all)")
	agg := fs.String("agg", "", "aggregates: count,min:col,max:col,sum:col (switches to aggregate output)")
	limit := fs.Int("limit", 0, "cap returned rows (0 = no cap)")
	out := fs.String("out", "", "output CSV file (default: stdout)")
	parallel := fs.Int("p", 0, "pipeline parallelism (0 = all CPUs)")
	verbose := fs.Bool("v", false, "per-stage report + pruning statistics")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("query needs -in")
	}
	opts := deepsqueeze.QueryOptions{Parallelism: *parallel, Limit: *limit}
	if *where != "" {
		p, err := deepsqueeze.ParsePredicate(*where)
		if err != nil {
			return err
		}
		opts.Where = p
	}
	if *sel != "" {
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				return fmt.Errorf("bad -select %q (empty column name)", *sel)
			}
			opts.Select = append(opts.Select, name)
		}
	}
	if *agg != "" {
		aggs, err := parseAggs(*agg)
		if err != nil {
			return err
		}
		opts.Aggs = aggs
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	res, err := deepsqueeze.QueryContext(ctx, buf, opts)
	if err != nil {
		return archiveErr(*in, err)
	}
	if *verbose {
		printStages(res.Stages)
		fmt.Fprintf(os.Stderr, "row groups: %d of %d pruned by zone maps, %d archive bytes skipped\n",
			res.GroupsPruned, res.GroupsTotal, res.BytesSkipped)
	}
	if len(opts.Aggs) > 0 {
		for _, a := range res.Aggregates {
			if a.Op.Kind == deepsqueeze.AggCount {
				fmt.Printf("count = %d\n", int64(a.Value))
			} else {
				fmt.Printf("%s(%s) = %g\n", a.Op.Kind, a.Op.Col, a.Value)
			}
		}
		return nil
	}
	w := io.Writer(os.Stdout)
	var of *os.File
	if *out != "" {
		if of, err = os.Create(*out); err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := res.Table.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The match summary goes to stderr so stdout stays a clean CSV stream.
	fmt.Fprintf(os.Stderr, "matched %d of %d rows\n", res.Matched, resRows(buf))
	if of != nil {
		return of.Close()
	}
	return nil
}

// resRows reports the archive's total row count for the query summary; the
// archive was already parsed once, so errors are impossible here and fall
// back to 0.
func resRows(archive []byte) int {
	info, err := deepsqueeze.Inspect(archive)
	if err != nil {
		return 0
	}
	return info.Rows
}

// parseAggs parses the -agg flag: a comma-separated list of "count",
// "min:col", "max:col", "sum:col".
func parseAggs(s string) ([]deepsqueeze.AggOp, error) {
	var out []deepsqueeze.AggOp
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, col, has := strings.Cut(part, ":")
		switch strings.ToLower(kind) {
		case "count":
			if has {
				return nil, fmt.Errorf("bad -agg entry %q (count takes no column)", part)
			}
			out = append(out, deepsqueeze.AggOp{Kind: deepsqueeze.AggCount})
		case "min", "max", "sum":
			if !has || col == "" {
				return nil, fmt.Errorf("bad -agg entry %q (want %s:column)", part, kind)
			}
			k := deepsqueeze.AggMin
			switch strings.ToLower(kind) {
			case "max":
				k = deepsqueeze.AggMax
			case "sum":
				k = deepsqueeze.AggSum
			}
			out = append(out, deepsqueeze.AggOp{Kind: k, Col: col})
		default:
			return nil, fmt.Errorf("bad -agg entry %q (want count, min:col, max:col, or sum:col)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -agg list")
	}
	return out, nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "archive file")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output (the same summary dsqzd's /archives serves)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	info, err := deepsqueeze.Inspect(buf)
	if err != nil {
		return archiveErr(*in, err)
	}
	streams, err := deepsqueeze.InspectStreams(buf)
	if err != nil {
		return archiveErr(*in, err)
	}
	if *jsonOut {
		sum := info.Summary()
		sum.Path = *in
		sum.Streams = deepsqueeze.StreamSummaries(streams)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Printf("archive: format v%d, %d bytes\nrows: %d\n", info.Version, info.TotalBytes, info.Rows)
	fmt.Printf("model: code size %d (%d-bit codes), %d expert(s)\n",
		info.CodeSize, info.CodeBits, info.NumExperts)
	if info.Streaming {
		fmt.Println("streaming batch archive: decompress with its model archive")
	}
	if info.Float32Decode {
		fmt.Println("float32 decode plan (corrections computed against float32 inference)")
	}
	if !info.RowOrderPreserved {
		fmt.Println("row order not preserved (order-free grouped storage)")
	}
	fmt.Printf("column kinds: %s\n", kindCensus(info.KindCensus))
	fmt.Println("columns:")
	for i, c := range info.Schema.Columns {
		fmt.Printf("  %-24s %-11v %s\n", c.Name, c.Type, info.ColumnKind[i])
	}
	if len(info.Groups) > 0 {
		fmt.Printf("row groups: %d (target %d rows/group)\n", len(info.Groups), info.RowGroupSize)
		fmt.Printf("  %5s  %-17s %9s %9s %9s %9s\n", "group", "rows", "segment", "codes", "mapping", "failures")
		for i, g := range info.Groups {
			span := fmt.Sprintf("[%d:%d)", g.RowStart, g.RowStart+g.RowCount)
			fmt.Printf("  %5d  %-17s %9d %9d %9d %9d\n",
				i, span, g.SegmentBytes, g.CodesBytes, g.MappingBytes, g.FailureBytes)
		}
	}
	if len(streams) > 0 {
		fmt.Println("streams (all groups):")
		fmt.Printf("  %-24s %-10s %9s %9s %6s  %s\n", "column", "stream", "frame", "raw", "ratio", "codecs")
		for _, st := range streams {
			col := st.Column
			if col == "" {
				col = "-"
			}
			ratio := 1.0
			if st.RawBytes > 0 {
				ratio = float64(st.FrameBytes) / float64(st.RawBytes)
			}
			fmt.Printf("  %-24s %-10s %9d %9d %5.1f%%  %s\n",
				col, st.Stream, st.FrameBytes, st.RawBytes, 100*ratio, codecHistogram(st.Codecs))
		}
	}
	return nil
}

// kindCensus renders the per-kind column counts in a fixed kind order so
// output is deterministic ("categorical×3 residual×1 fallback-categorical×2").
func kindCensus(census map[string]int) string {
	var parts []string
	for _, kind := range []string{
		"categorical", "binary", "residual", "quantized", "numdict",
		"continuous", "fallback-categorical", "fallback-numeric",
	} {
		if n := census[kind]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", kind, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// codecHistogram renders a stream's codec-choice tally ("deflate×3
// range-adaptive×5") in a fixed name order so output is deterministic.
func codecHistogram(codecs map[string]int) string {
	var parts []string
	for _, name := range []string{"stored", "deflate", "range-adaptive", "range-cpt"} {
		if n := codecs[name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", name, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func printBreakdown(bd core.Breakdown) {
	fmt.Printf("  header   %8d bytes\n  decoder  %8d bytes\n  codes    %8d bytes\n  failures %8d bytes\n  mapping  %8d bytes\n",
		bd.Header, bd.Decoder, bd.Codes, bd.Failures, bd.Mapping)
}
