// Command dsqz compresses and decompresses tabular CSV data with
// DeepSqueeze.
//
// Usage:
//
//	dsqz compress   -in data.csv -schema "city:cat,temp:num" -out data.dsqz [flags]
//	dsqz decompress -in data.dsqz -out data.csv [-cols city,temp] [-rows 0:1000] [-p 4] [-v]
//	dsqz inspect    -in data.dsqz
//
// The schema flag lists column name:type pairs in file order, where type is
// "cat" (categorical) or "num" (numeric). Compression flags:
//
//	-error 0.05        relative error threshold for all numeric columns
//	-code 2            code size (representation-layer width)
//	-experts 1         number of experts
//	-sample 0          training sample rows (0 = full data)
//	-tune              run Bayesian hyperparameter tuning first
//	-seed 1            random seed
//	-p 0               pipeline parallelism (0 = all CPUs)
//	-v                 verbose progress + per-stage pipeline report
//
// Decompression flags:
//
//	-cols a,b          decode only the named columns (projection)
//	-rows lo:hi        decode only the half-open row span, original order
//	-p 0               pipeline parallelism (0 = all CPUs)
//	-v                 per-stage pipeline report
//
// SIGINT/SIGTERM cancel an in-flight compression cleanly: the staged
// pipeline returns promptly with the context's error and no partial
// archive is left behind (the output file is only written on success).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deepsqueeze"
	"deepsqueeze/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "compress":
		err = runCompress(ctx, os.Args[2:])
	case "decompress":
		err = runDecompress(ctx, os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dsqz: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsqz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dsqz {compress|decompress|inspect} [flags]")
	fmt.Fprintln(os.Stderr, "run 'dsqz <subcommand> -h' for flags")
}

// parseSchema parses "name:cat,name:num,..." descriptors.
func parseSchema(s string) (*deepsqueeze.Schema, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -schema (e.g. \"city:cat,temp:num\")")
	}
	var cols []deepsqueeze.Column
	for _, part := range strings.Split(s, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad schema entry %q (want name:cat or name:num)", part)
		}
		switch typ {
		case "cat":
			cols = append(cols, deepsqueeze.Column{Name: name, Type: deepsqueeze.Categorical})
		case "num":
			cols = append(cols, deepsqueeze.Column{Name: name, Type: deepsqueeze.Numeric})
		default:
			return nil, fmt.Errorf("bad column type %q in %q (want cat or num)", typ, part)
		}
	}
	return deepsqueeze.NewSchema(cols...), nil
}

func runCompress(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	out := fs.String("out", "", "output archive file")
	schemaStr := fs.String("schema", "", "column schema: name:cat|num, comma separated")
	errThr := fs.Float64("error", 0, "relative error threshold for numeric columns (0 = lossless)")
	code := fs.Int("code", 2, "code size")
	experts := fs.Int("experts", 1, "number of experts")
	sample := fs.Int("sample", 0, "training sample rows (0 = all)")
	tune := fs.Bool("tune", false, "run hyperparameter tuning before compressing")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("p", 0, "pipeline parallelism (0 = all CPUs)")
	verbose := fs.Bool("v", false, "verbose progress + per-stage pipeline report")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compress needs -in and -out")
	}
	schema, err := parseSchema(*schemaStr)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	table, err := deepsqueeze.ReadCSV(f, schema)
	if err != nil {
		return err
	}
	thresholds := deepsqueeze.UniformThresholds(table, *errThr)
	opts := deepsqueeze.DefaultOptions()
	opts.CodeSize = *code
	opts.NumExperts = *experts
	opts.TrainSampleRows = *sample
	opts.Seed = *seed
	opts.Parallelism = *parallel
	if *verbose {
		opts.Verbose = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	if *tune {
		topts := deepsqueeze.DefaultTuneOptions()
		topts.Base = opts
		tres, err := deepsqueeze.TuneContext(ctx, table, thresholds, topts)
		if err != nil {
			return fmt.Errorf("tuning: %w", err)
		}
		opts = tres.Best
		fmt.Fprintf(os.Stderr, "tuned: code=%d experts=%d sample=%d (%d trials)\n",
			opts.CodeSize, opts.NumExperts, opts.TrainSampleRows, len(tres.Trials))
	}
	res, err := deepsqueeze.CompressContext(ctx, table, thresholds, opts)
	if err != nil {
		return err
	}
	if *verbose {
		printStages(res.Stages)
	}
	if err := os.WriteFile(*out, res.Archive, 0o644); err != nil {
		return err
	}
	raw := table.CSVSize()
	fmt.Printf("compressed %d rows: %d → %d bytes (%.2f%%), code bits %d\n",
		table.NumRows(), raw, res.Breakdown.Total, 100*res.Ratio(raw), res.CodeBits)
	printBreakdown(res.Breakdown)
	return nil
}

// printStages renders the per-stage pipeline report (-v).
func printStages(stages []deepsqueeze.StageStats) {
	fmt.Fprintln(os.Stderr, "pipeline stages:")
	for _, st := range stages {
		if st.Bytes > 0 {
			fmt.Fprintf(os.Stderr, "  %-18s %12v %10d bytes\n", st.Name, st.Wall.Round(time.Microsecond), st.Bytes)
		} else {
			fmt.Fprintf(os.Stderr, "  %-18s %12v\n", st.Name, st.Wall.Round(time.Microsecond))
		}
	}
}

func runDecompress(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "", "input archive file")
	out := fs.String("out", "", "output CSV file")
	cols := fs.String("cols", "", "comma-separated column names to decode (default: all)")
	rows := fs.String("rows", "", "row span lo:hi (half-open, original order; default: all)")
	parallel := fs.Int("p", 0, "pipeline parallelism (0 = all CPUs)")
	verbose := fs.Bool("v", false, "per-stage pipeline report")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress needs -in and -out")
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	opts := deepsqueeze.DecompressOptions{Parallelism: *parallel}
	if *cols != "" {
		for _, name := range strings.Split(*cols, ",") {
			opts.Columns = append(opts.Columns, strings.TrimSpace(name))
		}
	}
	if *rows != "" {
		lo, hi, ok := strings.Cut(*rows, ":")
		var rr deepsqueeze.RowRange
		if ok {
			_, errLo := fmt.Sscanf(lo, "%d", &rr.Lo)
			_, errHi := fmt.Sscanf(hi, "%d", &rr.Hi)
			if errLo != nil || errHi != nil {
				ok = false
			}
		}
		if !ok {
			return fmt.Errorf("bad -rows %q (want lo:hi, e.g. 1000:2000)", *rows)
		}
		opts.RowRange = rr
	}
	res, err := deepsqueeze.DecompressContext(ctx, buf, opts)
	if err != nil {
		return err
	}
	if *verbose {
		printStages(res.Stages)
	}
	table := res.Table
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := table.WriteCSV(of); err != nil {
		return err
	}
	fmt.Printf("decompressed %d rows × %d columns to %s\n",
		table.NumRows(), table.Schema.NumColumns(), *out)
	return of.Close()
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "archive file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	info, err := deepsqueeze.Inspect(buf)
	if err != nil {
		return err
	}
	fmt.Printf("archive: %d bytes\nrows: %d\n", info.TotalBytes, info.Rows)
	fmt.Printf("model: code size %d (%d-bit codes), %d expert(s)\n",
		info.CodeSize, info.CodeBits, info.NumExperts)
	if info.Streaming {
		fmt.Println("streaming batch archive: decompress with its model archive")
	}
	if !info.RowOrderPreserved {
		fmt.Println("row order not preserved (order-free grouped storage)")
	}
	fmt.Println("columns:")
	for i, c := range info.Schema.Columns {
		fmt.Printf("  %-24s %-11v %s\n", c.Name, c.Type, info.ColumnKind[i])
	}
	return nil
}

func printBreakdown(bd core.Breakdown) {
	fmt.Printf("  header   %8d bytes\n  decoder  %8d bytes\n  codes    %8d bytes\n  failures %8d bytes\n  mapping  %8d bytes\n",
		bd.Header, bd.Decoder, bd.Codes, bd.Failures, bd.Mapping)
}
