package main

import (
	"testing"

	"deepsqueeze"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("city:cat,temp:num, humid:num")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 3 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	want := []deepsqueeze.Column{
		{Name: "city", Type: deepsqueeze.Categorical},
		{Name: "temp", Type: deepsqueeze.Numeric},
		{Name: "humid", Type: deepsqueeze.Numeric},
	}
	for i, c := range want {
		if s.Columns[i] != c {
			t.Fatalf("column %d = %+v, want %+v", i, s.Columns[i], c)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noseparator",
		"name:bogus",
		"a:cat,b",
	} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) accepted", bad)
		}
	}
}
