package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepsqueeze"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("city:cat,temp:num, humid:num")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 3 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	want := []deepsqueeze.Column{
		{Name: "city", Type: deepsqueeze.Categorical},
		{Name: "temp", Type: deepsqueeze.Numeric},
		{Name: "humid", Type: deepsqueeze.Numeric},
	}
	for i, c := range want {
		if s.Columns[i] != c {
			t.Fatalf("column %d = %+v, want %+v", i, s.Columns[i], c)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noseparator",
		"name:bogus",
		"a:cat,b",
	} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) accepted", bad)
		}
	}
}

func TestParseRowRange(t *testing.T) {
	good := map[string]deepsqueeze.RowRange{
		"0:100":     {Lo: 0, Hi: 100},
		"50:50":     {Lo: 50, Hi: 50},
		"1000:2000": {Lo: 1000, Hi: 2000},
	}
	for in, want := range good {
		rr, err := parseRowRange(in)
		if err != nil {
			t.Errorf("parseRowRange(%q): %v", in, err)
			continue
		}
		if rr != want {
			t.Errorf("parseRowRange(%q) = %+v, want %+v", in, rr, want)
		}
	}
	bad := []string{
		"", "100", "a:b", "10:", ":10", "100:50", "-5:10", "0:-1",
	}
	for _, in := range bad {
		if _, err := parseRowRange(in); err == nil {
			t.Errorf("parseRowRange(%q) accepted", in)
		}
	}
}

// buildTestArchive compresses a tiny table for flag-validation tests.
func buildTestArchive(t *testing.T) []byte {
	t.Helper()
	schema := deepsqueeze.NewSchema(
		deepsqueeze.Column{Name: "city", Type: deepsqueeze.Categorical},
		deepsqueeze.Column{Name: "temp", Type: deepsqueeze.Numeric},
	)
	tb := deepsqueeze.NewTable(schema, 80)
	for i := 0; i < 80; i++ {
		tb.AppendRow([]string{[]string{"oslo", "lima"}[i%2]}, []float64{float64(i)})
	}
	opts := deepsqueeze.DefaultOptions()
	opts.Train.Epochs = 2
	opts.Seed = 3
	res, err := deepsqueeze.Compress(tb, deepsqueeze.UniformThresholds(tb, 0.05), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Archive
}

func TestValidateAgainstArchive(t *testing.T) {
	archive := buildTestArchive(t)
	if err := validateAgainstArchive(archive, []string{"city", "temp"}, deepsqueeze.RowRange{Lo: 0, Hi: 80}); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if err := validateAgainstArchive(archive, []string{"nope"}, deepsqueeze.RowRange{}); err == nil {
		t.Error("unknown column accepted")
	}
	if err := validateAgainstArchive(archive, nil, deepsqueeze.RowRange{Lo: 0, Hi: 81}); err == nil {
		t.Error("out-of-bounds row span accepted")
	}
	if err := validateAgainstArchive([]byte("not an archive"), nil, deepsqueeze.RowRange{}); err == nil {
		t.Error("garbage archive accepted")
	}
}

func TestParseAggs(t *testing.T) {
	aggs, err := parseAggs("count, min:temp,max:temp ,sum:temp")
	if err != nil {
		t.Fatal(err)
	}
	want := []deepsqueeze.AggOp{
		{Kind: deepsqueeze.AggCount},
		{Kind: deepsqueeze.AggMin, Col: "temp"},
		{Kind: deepsqueeze.AggMax, Col: "temp"},
		{Kind: deepsqueeze.AggSum, Col: "temp"},
	}
	if len(aggs) != len(want) {
		t.Fatalf("%d aggs, want %d", len(aggs), len(want))
	}
	for i := range want {
		if aggs[i] != want[i] {
			t.Errorf("agg %d = %+v, want %+v", i, aggs[i], want[i])
		}
	}
	for _, bad := range []string{"", "avg:temp", "min", "min:", "count:temp", ","} {
		if _, err := parseAggs(bad); err == nil {
			t.Errorf("parseAggs(%q) accepted", bad)
		}
	}
}

func TestArchiveErr(t *testing.T) {
	if err := archiveErr("x.dsqz", nil); err != nil {
		t.Fatalf("nil error wrapped: %v", err)
	}
	plain := fmt.Errorf("disk on fire")
	if err := archiveErr("x.dsqz", plain); err != plain {
		t.Fatalf("non-corrupt error rewrapped: %v", err)
	}
	_, cerr := deepsqueeze.Decompress([]byte("DSQZ garbage that is not an archive"))
	if cerr == nil {
		t.Fatal("garbage archive accepted")
	}
	wrapped := archiveErr("x.dsqz", cerr)
	if !strings.Contains(wrapped.Error(), "x.dsqz") || !errors.Is(wrapped, deepsqueeze.ErrCorrupt) {
		t.Fatalf("corrupt error not attributed to the archive: %v", wrapped)
	}
}

// TestRunInspectJSON checks `inspect -json` emits the same summary document
// dsqzd's /archives endpoint serves, with the path filled in.
func TestRunInspectJSON(t *testing.T) {
	archive := buildTestArchive(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.dsqz")
	if err := os.WriteFile(path, archive, 0o644); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := runInspect([]string{"-in", path, "-json"})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	var sum deepsqueeze.ArchiveSummary
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("inspect -json emitted invalid JSON: %v\n%s", err, out)
	}
	if sum.Path != path || sum.Rows != 80 || sum.Bytes != len(archive) {
		t.Fatalf("summary = %+v, want path=%s rows=80 bytes=%d", sum, path, len(archive))
	}
	if len(sum.Columns) != 2 || sum.Columns[0].Name != "city" || sum.Columns[0].Type != "cat" ||
		sum.Columns[1].Name != "temp" || sum.Columns[1].Type != "num" {
		t.Fatalf("columns = %+v", sum.Columns)
	}
}
